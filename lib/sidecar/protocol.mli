(** The per-flow sidecar protocol interface — one shape from the
    single-flow experiments to the multi-flow runtime.

    A protocol describes what a sidecar node does for {e one} flow:
    how it reacts to data packets crossing the junction, to quACK
    feedback addressed to it, to frequency-control frames, to a
    periodic timer, and to its state being evicted from a bounded
    table. Harnesses supply the plumbing: {!Node} adapts a protocol to
    a single-flow {!Chain} junction, and [Sidecar_runtime.Proxy]
    demultiplexes many flows onto per-flow instances from a bounded
    [Flow_table].

    Instantiation ({!t.init}) must have no engine side effects — no
    scheduling, no RNG draws — so harnesses are free to construct
    flows at any point during setup without disturbing event order. *)

val server_addr : string
(** The conventional quACK destination for the sending end host's
    sidecar ("server"). *)

(** Aggregate tallies a harness reads after a run. The fields are
    [Obs.Metrics.Counter] cells: protocol instances sharing one record
    (a bracketing proxy pair, or all the flows of a multi-flow proxy)
    sum into the same cells, and a harness can expose the record in an
    engine's metrics registry with {!register_counters} — same cells,
    no copying. *)
type counters = {
  quacks_tx : Obs.Metrics.Counter.t;  (** quACKs emitted *)
  quack_bytes : Obs.Metrics.Counter.t;  (** wire bytes of those quACKs *)
  resyncs : Obs.Metrics.Counter.t;
      (** §3.3 unilateral resyncs after decode overload *)
  replays_dropped : Obs.Metrics.Counter.t;
      (** regressed-index quACKs whose contents matched a remembered
          emission: dropped by the replay guard instead of resyncing *)
  buffer_bypass : Obs.Metrics.Counter.t;
      (** packets pushed out unpaced (full buffer) *)
  flushed_on_evict : Obs.Metrics.Counter.t;
      (** buffered packets flushed by eviction *)
  freq_sent : Obs.Metrics.Counter.t;  (** frequency-update frames emitted *)
  retransmissions : Obs.Metrics.Counter.t;
      (** local (in-network) retransmissions *)
}

val fresh_counters : unit -> counters

val register_counters : Obs.Metrics.t -> prefix:string -> counters -> unit
(** Attach every cell under ["<prefix>.<field>"]. *)

(** Everything a protocol instance may touch: the engine (clock and
    timers only — identity comes from the harness), the flow tag its
    emitted frames carry, and the two directions out of its junction. *)
type ctx = {
  engine : Netsim.Engine.t;
  flow : int;
  forward : Netsim.Packet.t -> unit;  (** toward the receiving end host *)
  backward : Netsim.Packet.t -> unit;  (** toward the sending end host *)
  counters : counters;
}

(** A point-in-time view of one flow's state, for reports. *)
type info = {
  buffered : int;  (** packets held (pacing buffer or copy buffer) *)
  outstanding : int;  (** logged sends not yet covered by a quACK *)
  window_bytes : int;  (** pacing window, when the protocol keeps one *)
  upstream_interval : int;  (** current quACK-every cadence *)
  buffer_peak : int;
}

val no_info : info

(** One flow's live handlers. All are total: a handler that does not
    apply to the protocol is a no-op, never an error. *)
type flow = {
  on_data : Netsim.Packet.t -> unit;
      (** A data packet arrived from the sender side. The flow is
          responsible for forwarding it (or buffering it for paced
          forwarding) via [ctx.forward]. *)
  on_feedback : index:int -> Sidecar_quack.Quack.t -> unit;
      (** A quACK addressed to this node arrived from the receiver
          side. *)
  on_freq : int -> unit;
      (** A frequency-update frame addressed to this node. *)
  on_timer : unit -> unit;  (** One tick of the protocol's timer. *)
  on_evict : unit -> unit;
      (** The flow's state is leaving a bounded table: flush or
          discard anything held so no data is stranded. *)
  on_release : unit -> unit;
      (** The flow terminated cleanly and its state is being
          discarded (voluntary [Flow_table.remove], {e not}
          eviction): return any pooled resources — a flat datapath's
          slab slot — without eviction's flush/teardown semantics. *)
  info : unit -> info;
}

(** Which per-flow sketch implementation a protocol instantiates.
    [Ref] is the boxed {!Sidecar_quack.Receiver_state} — the default,
    semantically authoritative path. [Flat] backs every flow's power
    sums with one preallocated arena ([Sidecar_fastpath.Slab] of
    [slots] slots, batched [batch] identifiers at a time): size
    [slots] to the flow-table capacity so eviction always frees a
    slot before the next admission. Feedback-path decode state
    (sender sketches) stays on the reference implementation in both
    modes. *)
type datapath = Ref | Flat of { slots : int; batch : int }

type timer_scope =
  | Flow_active  (** reschedule while the run continues and the flow is open *)
  | Until  (** reschedule until the simulation horizon *)

type timer = { period : Netsim.Sim_time.span; scope : timer_scope }

type t = {
  name : string;
  addr : string;
      (** destination tag this node consumes ([Sframes] frames whose
          [dst] equals [addr] are handled; others ride along) *)
  timer : timer option;
  init : ctx -> flow;
}

(** A protocol implementation: a config type and a constructor. *)
module type S = sig
  type config

  val make : config -> t
end

val send_quack :
  ?src:string ->
  ctx -> dst:string -> index:int -> count_omitted:bool ->
  Sidecar_quack.Quack.t -> unit
(** Emit one quACK on the return path ([ctx.backward]), tallying
    [quacks_tx] and [quack_bytes] and recording a [Quack_sent] trace
    event when the [Quack] category is enabled. [src] (default
    ["proxy"]) names the emitting sidecar so a sender merging feedback
    from several paths can attribute the quACK. *)

val trace : ctx -> Obs.Trace.event -> unit
(** Record a trace event on the engine's ring at the current clock
    (masked by the event's category, like [Obs.Trace.record]). For
    rare events — resyncs, evictions; hot paths should guard with
    [Obs.Trace.on] before building the event. *)
