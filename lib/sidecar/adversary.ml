module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Rng = Netsim.Rng
module Quack = Sidecar_quack.Quack
module Wire = Sidecar_quack.Wire

type origin = Proxy | Forged | Replayed | Tampered

let origin_name = function
  | Proxy -> "proxy"
  | Forged -> "forged"
  | Replayed -> "replayed"
  | Tampered -> "tampered"

type Packet.payload +=
  | Sealed of { wire : string; tag : string; index : int; origin : origin }

type rates = {
  spoof : float;
  replay : float;
  truncate : float;
  bitflip : float;
}

let no_attack = { spoof = 0.; replay = 0.; truncate = 0.; bitflip = 0. }
let uniform r = { spoof = r; replay = r; truncate = r; bitflip = r }

type stats = {
  observed : int;
  spoofs : int;
  replays : int;
  truncations : int;
  bitflips : int;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  rates : rates;
  replay_delay : Time.span;
  emit : Packet.t -> unit;
  mutable observed : int;
  mutable spoofs : int;
  mutable replays : int;
  mutable truncations : int;
  mutable bitflips : int;
}

let check_rate name r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Adversary.create: %s rate %g outside [0, 1]" name r)

let create ?(replay_delay = Time.ms 50) ~engine ~rng ~rates ~emit () =
  check_rate "spoof" rates.spoof;
  check_rate "replay" rates.replay;
  check_rate "truncate" rates.truncate;
  check_rate "bitflip" rates.bitflip;
  if replay_delay < 0 then invalid_arg "Adversary.create: negative replay delay";
  {
    engine;
    rng;
    rates;
    replay_delay;
    emit;
    observed = 0;
    spoofs = 0;
    replays = 0;
    truncations = 0;
    bitflips = 0;
  }

let stats t =
  {
    observed = t.observed;
    spoofs = t.spoofs;
    replays = t.replays;
    truncations = t.truncations;
    bitflips = t.bitflips;
  }

let random_tag t =
  String.init Wire.auth_overhead (fun _ -> Char.chr (Rng.int t.rng 256))

(* Fabricate a quACK from whole cloth, using the observed emission as
   a template so the forgery is well-formed at the codec level: same
   parameters, uniformly random power sums below the modulus, an index
   bumped past the genuine one so it looks like the freshest feedback
   yet. Without authentication the only thing wrong with it is that
   every bit of its content is a lie. *)
let forge t (p : Packet.t) ~wire ~index =
  match Wire.decode_framed wire with
  | Error _ -> ()
  | Ok q ->
      let sums = Array.map (fun _ -> Rng.int t.rng q.Quack.modulus) q.Quack.sums in
      let count =
        if q.Quack.count_bits = 0 then 0
        else Rng.int t.rng (1 lsl q.Quack.count_bits)
      in
      let fwire = Wire.encode_framed { q with Quack.sums; count } in
      let findex = index + 1 + Rng.int t.rng 4 in
      t.spoofs <- t.spoofs + 1;
      t.emit
        {
          p with
          Packet.payload =
            Sealed { wire = fwire; tag = random_tag t; index = findex; origin = Forged };
        }

(* Re-emit a captured emission byte-for-byte (wire AND tag — the tag
   is valid, which is exactly why replay needs its own defence) after
   a short on-path detour. *)
let replay t (p : Packet.t) ~wire ~tag ~index =
  t.replays <- t.replays + 1;
  Engine.schedule t.engine ~delay:t.replay_delay (fun () ->
      t.emit
        { p with Packet.payload = Sealed { wire; tag; index; origin = Replayed } })

(* Chop the frame down to half its power sums and re-encode — the
   framed format is self-describing, so an unauthenticated consumer
   happily decodes the shorter sketch. The original tag is kept (it no
   longer matches, which is the point). *)
let truncate_wire t wire =
  match Wire.decode_framed wire with
  | Error _ -> None
  | Ok q ->
      let th = max 1 (Quack.threshold q / 2) in
      t.truncations <- t.truncations + 1;
      Some (Wire.encode_framed { q with Quack.sums = Array.sub q.Quack.sums 0 th })

let bitflip_wire t wire =
  if String.length wire = 0 then None
  else begin
    let b = Bytes.of_string wire in
    let bit = Rng.int t.rng (8 * Bytes.length b) in
    Bytes.set b (bit / 8)
      (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
    t.bitflips <- t.bitflips + 1;
    Some (Bytes.to_string b)
  end

let on_path t (p : Packet.t) =
  match p.Packet.payload with
  | Sealed { wire; tag; index; origin = Proxy } ->
      t.observed <- t.observed + 1;
      (* one bernoulli draw per attack in a fixed order, whatever the
         rates: same-seed runs consume the stream identically across
         arms, so attack schedules are comparable between them *)
      let do_replay = Rng.bool t.rng ~p:t.rates.replay in
      let do_spoof = Rng.bool t.rng ~p:t.rates.spoof in
      let do_trunc = Rng.bool t.rng ~p:t.rates.truncate in
      let do_flip = Rng.bool t.rng ~p:t.rates.bitflip in
      if do_replay then replay t p ~wire ~tag ~index;
      if do_spoof then forge t p ~wire ~index;
      let tampered =
        if do_trunc then truncate_wire t wire
        else if do_flip then bitflip_wire t wire
        else None
      in
      let p =
        match tampered with
        | None -> p
        | Some wire' ->
            { p with Packet.payload = Sealed { wire = wire'; tag; index; origin = Tampered } }
      in
      t.emit p
  | _ -> t.emit p

let spec ?replay_delay ~rates ~seed ?expose () : Node.spec =
 fun ports ->
  let rng = Rng.create (Rng.derive seed ~index:ports.Node.index) in
  let t =
    create ?replay_delay ~engine:ports.Node.engine ~rng ~rates
      ~emit:ports.Node.backward ()
  in
  (match expose with None -> () | Some f -> f t);
  {
    Node.fwd = ports.Node.forward;
    rev = (fun p -> on_path t p);
    start = (fun () -> ());
  }
