(** ACK reduction (§2.2) as a {!Protocol}: a pure near-proxy that
    observes each arriving data packet into a quACK receiver and, every
    [quack_every] arrivals, emits a cumulative quACK toward the server
    {e before} forwarding the data on. Stateless on the return path —
    the server's sidecar turns the quACKs into early window credit so
    the client can ACK arbitrarily rarely. *)

type config = {
  bits : int;
  threshold : int;
  count_bits : int option;  (** [None] = power-sum default *)
  quack_every : int;  (** steerable at runtime by [Freq_update] frames *)
  omit_count : bool;  (** model the count-omitting wire encoding *)
  field : (module Sidecar_field.Modular.S) option;
      (** substitute same-width sketch arithmetic ([None] = default) *)
  datapath : Protocol.datapath;  (** receive-path sketch backing *)
}

val make : config -> Protocol.t
(** @raise Invalid_argument when [quack_every <= 0]. *)
