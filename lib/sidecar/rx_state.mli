(** Datapath-selectable receiver sketches for per-flow protocols.

    A protocol's receive path needs three operations per flow — fold
    an identifier in, snapshot a quACK, give the state back. This
    module hides which implementation provides them: the boxed
    reference {!Sidecar_quack.Receiver_state} or a slot of a shared
    {!Sidecar_fastpath.Slab} ({!Protocol.datapath}). A protocol
    creates one {!pool} in [make] (so a [Flat] arena is sized once)
    and {!attach}es a sketch per admitted flow in [init].

    Both implementations produce bit-identical quACKs for the same
    insert sequence (pinned by test/spec's differential functors), so
    scenario reports do not depend on the datapath. *)

type pool

val pool :
  datapath:Protocol.datapath ->
  bits:int ->
  ?field:(module Sidecar_field.Modular.S) ->
  ?backend:Sidecar_fastpath.Slab.backend ->
  ?count_bits:int ->
  threshold:int ->
  unit ->
  pool
(** [field] substitutes same-width arithmetic on either datapath
    (reference sketches take it directly; a flat slab derives its
    backend from it, or from [backend] when forced — e.g. [`Log] for
    the table ablation). [count_bits] is the emitted quACK's count
    width (default 16). @raise Invalid_argument as
    [Receiver_state.create] / [Slab.create]. *)

type t = {
  receive : int -> unit;  (** fold one identifier in *)
  emit : unit -> Sidecar_quack.Quack.t;  (** cumulative snapshot *)
  received : unit -> int;  (** identifiers folded in so far *)
  release : unit -> unit;
      (** return pooled state (flat: the slab slot, scrubbed);
          idempotent, and a no-op on the reference path *)
}

val attach : pool -> t
(** One flow's sketch. @raise Invalid_argument when a [Flat] pool is
    out of slots (size the slab to the flow-table capacity). *)
