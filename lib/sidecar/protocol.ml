module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Counter = Obs.Metrics.Counter

let server_addr = "server"

type counters = {
  quacks_tx : Counter.t;
  quack_bytes : Counter.t;
  resyncs : Counter.t;
  replays_dropped : Counter.t;
  buffer_bypass : Counter.t;
  flushed_on_evict : Counter.t;
  freq_sent : Counter.t;
  retransmissions : Counter.t;
}

let fresh_counters () =
  {
    quacks_tx = Counter.create ();
    quack_bytes = Counter.create ();
    resyncs = Counter.create ();
    replays_dropped = Counter.create ();
    buffer_bypass = Counter.create ();
    flushed_on_evict = Counter.create ();
    freq_sent = Counter.create ();
    retransmissions = Counter.create ();
  }

let register_counters metrics ~prefix c =
  let field f = Printf.sprintf "%s.%s" prefix f in
  Obs.Metrics.attach_counter metrics (field "quacks_tx") c.quacks_tx;
  Obs.Metrics.attach_counter metrics (field "quack_bytes") c.quack_bytes;
  Obs.Metrics.attach_counter metrics (field "resyncs") c.resyncs;
  Obs.Metrics.attach_counter metrics (field "replays_dropped") c.replays_dropped;
  Obs.Metrics.attach_counter metrics (field "buffer_bypass") c.buffer_bypass;
  Obs.Metrics.attach_counter metrics (field "flushed_on_evict") c.flushed_on_evict;
  Obs.Metrics.attach_counter metrics (field "freq_sent") c.freq_sent;
  Obs.Metrics.attach_counter metrics (field "retransmissions") c.retransmissions

type ctx = {
  engine : Engine.t;
  flow : int;
  forward : Packet.t -> unit;
  backward : Packet.t -> unit;
  counters : counters;
}

type info = {
  buffered : int;
  outstanding : int;
  window_bytes : int;
  upstream_interval : int;
  buffer_peak : int;
}

let no_info =
  {
    buffered = 0;
    outstanding = 0;
    window_bytes = 0;
    upstream_interval = 0;
    buffer_peak = 0;
  }

type flow = {
  on_data : Packet.t -> unit;
  on_feedback : index:int -> Sidecar_quack.Quack.t -> unit;
  on_freq : int -> unit;
  on_timer : unit -> unit;
  on_evict : unit -> unit;
  on_release : unit -> unit;
  info : unit -> info;
}

type datapath = Ref | Flat of { slots : int; batch : int }

type timer_scope = Flow_active | Until
type timer = { period : Time.span; scope : timer_scope }

type t = { name : string; addr : string; timer : timer option; init : ctx -> flow }

module type S = sig
  type config

  val make : config -> t
end

let trace ctx ev =
  Obs.Trace.record (Engine.trace ctx.engine) ~time:(Engine.now ctx.engine) ev

let send_quack ?src ctx ~dst ~index ~count_omitted quack =
  let pkt =
    Sframes.quack_packet ?src ~quack ~dst ~index ~count_omitted ~flow:ctx.flow
      ~now:(Engine.now ctx.engine) ()
  in
  Counter.incr ctx.counters.quacks_tx;
  Counter.add ctx.counters.quack_bytes pkt.Packet.size;
  let tr = Engine.trace ctx.engine in
  if Obs.Trace.on tr Obs.Trace.Quack then
    Obs.Trace.record tr ~time:(Engine.now ctx.engine)
      (Obs.Trace.Quack_sent
         { dst; flow = ctx.flow; index; bytes = pkt.Packet.size });
  ctx.backward pkt
