module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Time = Netsim.Sim_time

let server_addr = "server"

type counters = {
  mutable quacks_tx : int;
  mutable quack_bytes : int;
  mutable resyncs : int;
  mutable buffer_bypass : int;
  mutable flushed_on_evict : int;
  mutable freq_sent : int;
  mutable retransmissions : int;
}

let fresh_counters () =
  {
    quacks_tx = 0;
    quack_bytes = 0;
    resyncs = 0;
    buffer_bypass = 0;
    flushed_on_evict = 0;
    freq_sent = 0;
    retransmissions = 0;
  }

type ctx = {
  engine : Engine.t;
  flow : int;
  forward : Packet.t -> unit;
  backward : Packet.t -> unit;
  counters : counters;
}

type info = {
  buffered : int;
  outstanding : int;
  window_bytes : int;
  upstream_interval : int;
  buffer_peak : int;
}

let no_info =
  {
    buffered = 0;
    outstanding = 0;
    window_bytes = 0;
    upstream_interval = 0;
    buffer_peak = 0;
  }

type flow = {
  on_data : Packet.t -> unit;
  on_feedback : index:int -> Sidecar_quack.Quack.t -> unit;
  on_freq : int -> unit;
  on_timer : unit -> unit;
  on_evict : unit -> unit;
  info : unit -> info;
}

type timer_scope = Flow_active | Until
type timer = { period : Time.span; scope : timer_scope }

type t = { name : string; addr : string; timer : timer option; init : ctx -> flow }

module type S = sig
  type config

  val make : config -> t
end

let send_quack ctx ~dst ~index ~count_omitted quack =
  let pkt =
    Sframes.quack_packet ~quack ~dst ~index ~count_omitted ~flow:ctx.flow
      ~now:(Engine.now ctx.engine)
  in
  ctx.counters.quacks_tx <- ctx.counters.quacks_tx + 1;
  ctx.counters.quack_bytes <- ctx.counters.quack_bytes + pkt.Packet.size;
  ctx.backward pkt
