(* The proxy's AIMD pacing window over its downstream segment. Losses
   only shrink the window once per congestion event: a loss of a packet
   forwarded before the previous reduction is part of the same event
   (the same de-duplication a transport's recovery period performs). *)
type t = {
  wire : int;  (* bytes per data packet *)
  mutable win : int;
  mutable ssthresh : int;
  mutable forwarded : int;  (* forward index counter *)
  mutable recovery_mark : int;
}

let create ~wire =
  if wire <= 0 then invalid_arg "Proxy_window.create: wire size must be positive";
  { wire; win = 10 * wire; ssthresh = max_int; forwarded = 0; recovery_mark = 0 }

let next_index t =
  let i = t.forwarded in
  t.forwarded <- i + 1;
  i

let on_quack t ~acked_pkts ~lost_indices =
  let new_event = List.exists (fun i -> i >= t.recovery_mark) lost_indices in
  if new_event then begin
    t.recovery_mark <- t.forwarded;
    t.ssthresh <- max (2 * t.wire) (t.win / 2);
    t.win <- t.ssthresh
  end;
  if acked_pkts > 0 then
    if t.win < t.ssthresh then t.win <- t.win + (acked_pkts * t.wire)
    else t.win <- t.win + max 1 (acked_pkts * t.wire * t.wire / t.win)

let window t = t.win
let forwarded t = t.forwarded
