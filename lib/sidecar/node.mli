(** A sidecar node at one path junction.

    A node owns the two packet handlers of a junction (one per
    direction) and any timers it needs. {!Chain} wires a node between
    two {!Path} segments: packets delivered by the upstream forward
    link enter [fwd], packets delivered by the downstream return link
    enter [rev], and the node sends onward through its ports.

    Construction (applying a {!spec} to its {!ports}) must have no
    engine side effects; all scheduling belongs in [start], which the
    harness invokes in deterministic order (client sidecar first, then
    nodes left to right) so same-seed runs stay reproducible. *)

type ports = {
  engine : Netsim.Engine.t;
  index : int;  (** junction index, left to right from the sender *)
  forward : Netsim.Packet.t -> unit;  (** send toward the receiver *)
  backward : Netsim.Packet.t -> unit;  (** send toward the sender *)
  until : Netsim.Sim_time.t;  (** simulation horizon *)
  continue : unit -> bool;
      (** [true] while the run is inside the horizon and the flow has
          not completed — the standard timer-reschedule condition *)
}

type t = {
  fwd : Netsim.Packet.t -> unit;  (** handler for sender-side arrivals *)
  rev : Netsim.Packet.t -> unit;  (** handler for receiver-side arrivals *)
  start : unit -> unit;  (** schedule timers; engine effects live here *)
}

type spec = ports -> t

val pass_through : spec
(** The identity node: forwards both directions untouched. A chain of
    pass-through nodes is behaviourally the {!Path.baseline}. *)

val start : t -> unit

val of_protocol :
  ?flow_id:int -> ?counters:Protocol.counters ->
  ?expose:(Protocol.flow -> unit) -> Protocol.t -> spec
(** Adapt a {!Protocol} to a single-flow junction: [Sframes] frames
    addressed to the protocol's [addr] are routed to [on_freq] /
    [on_feedback], other sidecar frames ride along unchanged, data
    packets go to [on_data], and the protocol's timer (if any) is
    scheduled by [start]. [flow_id] (default 0) tags emitted frames;
    [counters] (fresh if omitted) collects tallies — share one record
    across a node pair to sum them; [expose] hands the harness the
    per-flow handle so reports can read {!Protocol.flow.info} after
    the run. *)
