(** ACK reduction (§2.2, Fig. 3).

    The proxy sidecar quACKs every [quack_every] data packets to the
    server — far more frequently than the client's end-to-end ACKs,
    which the client turns down via the ACK-frequency extension. The
    server provisionally advances its send window from proxy quACKs
    (packets known past the proxy) and falls back to the sparse
    end-to-end ACKs for retransmission decisions — including losses on
    the proxy→client hop, which quACKs cannot see.

    The proxy never reads or modifies connection packets and the
    client does not participate in the sidecar protocol at all. *)

type config = {
  units : int;
  mss : int;
  near : Path.segment;  (** server→proxy *)
  far : Path.segment;  (** proxy→client *)
  quack_every : int;  (** proxy quACKs every n data packets (§4.3: 32) *)
  client_ack_every : int;  (** reduced e2e ACK frequency (e.g. 32) *)
  warmup_units : int;
      (** keep immediate (every-2) ACKs until this many units have
          arrived — the ACK-frequency draft keeps start-up clocking
          dense and thins ACKs once the flow is established *)
  threshold : int;
  bits : int;
  omit_count : bool;  (** drop the count field; it is implicitly [n] *)
  seed : int;
  until : Netsim.Sim_time.t;
}

val default_config : config

type report = {
  flow : Transport.Flow.result;
  client_acks : int;  (** e2e ACK packets the client transmitted *)
  client_ack_bytes : int;
  quacks : int;
  quack_bytes : int;
  window_freed_early_bytes : int;
      (** bytes released from the window by quACKs before their e2e ACK *)
  spurious_retx : int;
      (** provisional-deadline retransmissions that were unnecessary *)
}

val pp_report : Format.formatter -> report -> unit

val json_report : report -> Obs.Json.t
(** Schema-stable JSON mirror of {!report}. *)

val run : config -> report
val baseline : config -> Transport.Flow.result * int
(** Same path, no sidecar, default ACK frequency (every 2). Returns
    the flow result and the client ACK-byte total. *)
