(** Congestion-control division (§2.1) as a {!Protocol}.

    The proxy observes arriving data into a quACK receiver, forwards
    it under its own AIMD pacing window ({!Proxy_window}) driven by
    downstream quACK feedback, and emits upstream quACKs toward the
    server either on a timer (with buffer-watermark backpressure) or
    every [n] packets. *)

(** How upstream quACKs are emitted. [Timer] withholds emission while
    the forwarding buffer sits above [high_watermark] packets —
    starving the server of feedback is the backpressure signal.
    [Every n] emits after every [n] arrivals (steerable at runtime by
    [Freq_update] frames). *)
type upstream =
  | Timer of { interval : Netsim.Sim_time.span; high_watermark : int }
  | Every of int

(** What happens when the pacing buffer exceeds [buffer_pkts]:
    [Drop] discards the arrival (it was never logged downstream, so
    decode stays sound); [Bypass] forwards the buffer head unpaced. *)
type overflow = Drop | Bypass

type config = {
  bits : int;
  threshold : int;
  count_bits : int option;  (** [None] = power-sum default *)
  wire : int;  (** on-the-wire packet size used for window accounting *)
  buffer_pkts : int;
  upstream : upstream;
  overflow : overflow;
  field : (module Sidecar_field.Modular.S) option;
      (** substitute same-width sketch arithmetic ([None] = default);
          applies to both the upstream receiver sketch and the
          downstream decode state, which must agree with the client *)
  datapath : Protocol.datapath;
      (** backing for the upstream receiver sketch; the downstream
          decode state stays on the reference implementation *)
}

val make : config -> Protocol.t
(** @raise Invalid_argument when [wire <= 0], [buffer_pkts <= 0], or
    [Every n] with [n <= 0]. *)
