module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Q = Sidecar_quack

type config = {
  units : int;
  mss : int;
  ingress : Path.segment;
  middle : Path.segment;
  egress : Path.segment;
  initial_quack_every : int;
  adaptive : bool;
  target_missing : int;
  threshold : int;
  bits : int;
  buffer_pkts : int;
  strikes_to_lose : int;
  reorder_tolerant_endpoints : bool;
  seed : int;
  until : Time.t;
}

let default_config =
  {
    units = 2000;
    mss = 1460;
    ingress = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 20) ();
    middle =
      Path.segment ~rate_bps:50_000_000 ~delay:(Time.ms 1)
        ~loss:
          (Path.Gilbert
             { p_good_to_bad = 0.01; p_bad_to_good = 0.2; loss_bad = 0.3 })
        ();
    egress = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 9) ();
    initial_quack_every = 8;
    adaptive = true;
    target_missing = 20;
    threshold = 64;
    bits = 32;
    buffer_pkts = 8192;
    strikes_to_lose = 1;
    reorder_tolerant_endpoints = true;
    seed = 1;
    until = Time.s 300;
  }

type report = {
  flow : Transport.Flow.result;
  proxy_retransmissions : int;
  quacks : int;
  quack_bytes : int;
  freq_updates : int;
  final_quack_every : int;
  buffer_peak : int;
  subpath_loss_observed : float;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%a@,proxy retransmissions: %d@,quACKs: %d (%d B)@,\
     frequency updates: %d (final: every %d pkts)@,buffer peak: %d@,\
     subpath loss observed: %.2f%%@]"
    Transport.Flow.pp_result r.flow r.proxy_retransmissions r.quacks
    r.quack_bytes r.freq_updates r.final_quack_every r.buffer_peak
    (100. *. r.subpath_loss_observed)

let json_report r =
  Obs.Json.Obj
    [
      ("flow", Transport.Flow.json_result r.flow);
      ("proxy_retransmissions", Obs.Json.Int r.proxy_retransmissions);
      ("quacks", Obs.Json.Int r.quacks);
      ("quack_bytes", Obs.Json.Int r.quack_bytes);
      ("freq_updates", Obs.Json.Int r.freq_updates);
      ("final_quack_every", Obs.Json.Int r.final_quack_every);
      ("buffer_peak", Obs.Json.Int r.buffer_peak);
      ("subpath_loss_observed", Obs.Json.Float r.subpath_loss_observed);
    ]

let segments cfg = [ cfg.ingress; cfg.middle; cfg.egress ]

(* Both the baseline and the sidecar run use the same endpoint
   configuration; reorder tolerance (a large packet threshold, leaving
   RFC 9002's time threshold in charge) is an endpoint property, not
   part of the sidecar. *)
let pkt_threshold cfg = if cfg.reorder_tolerant_endpoints then 1024 else 3

let baseline cfg =
  let { Path.engine; fwd; rev } = Path.build ~seed:cfg.seed (segments cfg) in
  let n = Array.length fwd in
  for i = 0 to n - 2 do
    Link.set_deliver fwd.(i) (fun p -> ignore (Link.send fwd.(i + 1) p));
    Link.set_deliver rev.(i) (fun p -> ignore (Link.send rev.(i + 1) p))
  done;
  let sender =
    Transport.Sender.create engine ~mss:cfg.mss
      ~pkt_threshold:(pkt_threshold cfg) ~total_units:cfg.units
      ~egress:(fun p -> ignore (Link.send fwd.(0) p))
      ()
  in
  let receiver =
    Transport.Receiver.create engine ~total_units:cfg.units
      ~send_ack:(fun p -> ignore (Link.send rev.(0) p))
      ()
  in
  Link.set_deliver fwd.(n - 1) (Transport.Receiver.deliver receiver);
  Link.set_deliver rev.(n - 1) (Transport.Sender.deliver_ack sender);
  Transport.Flow.run engine ~sender ~receiver ~until:cfg.until ()

let run cfg =
  let counters = Protocol.fresh_counters () in
  let near_flow = ref None in
  let pcfg =
    {
      Proto_retx.bits = cfg.bits;
      threshold = cfg.threshold;
      strikes_to_lose = cfg.strikes_to_lose;
      buffer_pkts = cfg.buffer_pkts;
      initial_quack_every = cfg.initial_quack_every;
      adaptive = cfg.adaptive;
      target_missing = cfg.target_missing;
      subpath_rtt = 2 * cfg.middle.Path.delay;
      near_addr = "proxyA";
      far_addr = "proxyB";
      field = None;
      datapath = Protocol.Ref;
    }
  in
  let outcome =
    Chain.run ~seed:cfg.seed ~units:cfg.units ~mss:cfg.mss
      ~pkt_threshold:(pkt_threshold cfg)
      ~nodes:
        [
          Node.of_protocol ~counters
            ~expose:(fun fl -> near_flow := Some fl)
            (Proto_retx.near pcfg);
          Node.of_protocol ~counters (Proto_retx.far pcfg);
        ]
      ~until:cfg.until (segments cfg)
  in
  let near_info =
    match !near_flow with
    | Some fl -> fl.Protocol.info ()
    | None -> Protocol.no_info
  in
  {
    flow = outcome.Chain.flow;
    proxy_retransmissions =
      Obs.Metrics.Counter.get counters.Protocol.retransmissions;
    quacks = Obs.Metrics.Counter.get counters.Protocol.quacks_tx;
    quack_bytes = Obs.Metrics.Counter.get counters.Protocol.quack_bytes;
    freq_updates = Obs.Metrics.Counter.get counters.Protocol.freq_sent;
    final_quack_every = near_info.Protocol.upstream_interval;
    buffer_peak = near_info.Protocol.buffer_peak;
    subpath_loss_observed = Link.loss_rate_observed outcome.Chain.built.Path.fwd.(1);
  }
