module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Q = Sidecar_quack

type config = {
  units : int;
  mss : int;
  ingress : Path.segment;
  middle : Path.segment;
  egress : Path.segment;
  initial_quack_every : int;
  adaptive : bool;
  target_missing : int;
  threshold : int;
  bits : int;
  buffer_pkts : int;
  strikes_to_lose : int;
  reorder_tolerant_endpoints : bool;
  seed : int;
  until : Time.t;
}

let default_config =
  {
    units = 2000;
    mss = 1460;
    ingress = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 20) ();
    middle =
      Path.segment ~rate_bps:50_000_000 ~delay:(Time.ms 1)
        ~loss:
          (Path.Gilbert
             { p_good_to_bad = 0.01; p_bad_to_good = 0.2; loss_bad = 0.3 })
        ();
    egress = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 9) ();
    initial_quack_every = 8;
    adaptive = true;
    target_missing = 20;
    threshold = 64;
    bits = 32;
    buffer_pkts = 8192;
    strikes_to_lose = 1;
    reorder_tolerant_endpoints = true;
    seed = 1;
    until = Time.s 300;
  }

type report = {
  flow : Transport.Flow.result;
  proxy_retransmissions : int;
  quacks : int;
  quack_bytes : int;
  freq_updates : int;
  final_quack_every : int;
  buffer_peak : int;
  subpath_loss_observed : float;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%a@,proxy retransmissions: %d@,quACKs: %d (%d B)@,\
     frequency updates: %d (final: every %d pkts)@,buffer peak: %d@,\
     subpath loss observed: %.2f%%@]"
    Transport.Flow.pp_result r.flow r.proxy_retransmissions r.quacks
    r.quack_bytes r.freq_updates r.final_quack_every r.buffer_peak
    (100. *. r.subpath_loss_observed)

let segments cfg = [ cfg.ingress; cfg.middle; cfg.egress ]

(* Both the baseline and the sidecar run use the same endpoint
   configuration; reorder tolerance (a large packet threshold, leaving
   RFC 9002's time threshold in charge) is an endpoint property, not
   part of the sidecar. *)
let pkt_threshold cfg = if cfg.reorder_tolerant_endpoints then 1024 else 3

let baseline cfg =
  let { Path.engine; fwd; rev } = Path.build ~seed:cfg.seed (segments cfg) in
  let n = Array.length fwd in
  for i = 0 to n - 2 do
    Link.set_deliver fwd.(i) (fun p -> ignore (Link.send fwd.(i + 1) p));
    Link.set_deliver rev.(i) (fun p -> ignore (Link.send rev.(i + 1) p))
  done;
  let sender =
    Transport.Sender.create engine ~mss:cfg.mss
      ~pkt_threshold:(pkt_threshold cfg) ~total_units:cfg.units
      ~egress:(fun p -> ignore (Link.send fwd.(0) p))
      ()
  in
  let receiver =
    Transport.Receiver.create engine ~total_units:cfg.units
      ~send_ack:(fun p -> ignore (Link.send rev.(0) p))
      ()
  in
  Link.set_deliver fwd.(n - 1) (Transport.Receiver.deliver receiver);
  Link.set_deliver rev.(n - 1) (Transport.Sender.deliver_ack sender);
  Transport.Flow.run engine ~sender ~receiver ~until:cfg.until ()

let run cfg =
  let { Path.engine; fwd; rev } = Path.build ~seed:cfg.seed (segments cfg) in
  let s2a = fwd.(0) and a2b = fwd.(1) and b2c = fwd.(2) in
  (* return path, receiver side first: client→B, B→A, A→server *)
  let c2b = rev.(0) and b2a = rev.(1) and a2s = rev.(2) in
  let quacks = ref 0 in
  let quack_bytes = ref 0 in
  let freq_updates = ref 0 in
  let proxy_retx = ref 0 in

  (* ---- proxy A: sender side of the subpath ----------------------- *)
  (* meta: the buffered packet itself, so missing packets can be
     resent byte-identical. *)
  let a_ss =
    Q.Sender_state.create
      {
        Q.Sender_state.default_config with
        bits = cfg.bits;
        threshold = cfg.threshold;
        strikes_to_lose = cfg.strikes_to_lose;
      }
  in
  (* Copy buffer keyed by uid; bounded. *)
  let buffer : (int, Packet.t) Hashtbl.t = Hashtbl.create 1024 in
  let buffer_fifo : int Queue.t = Queue.create () in
  let buffer_peak = ref 0 in
  let quack_every = ref cfg.initial_quack_every in
  let since_freq_update = ref 0 in
  (* Suppress duplicate refills of the same packet while a previous
     local retransmission is still crossing the subpath. *)
  let resend_holdoff = (2 * cfg.middle.Path.delay) + Time.ms 1 in
  let last_resend : (int, Time.t) Hashtbl.t = Hashtbl.create 64 in
  let a_forward (p : Packet.t) =
    Q.Sender_state.on_send a_ss ~id:p.Packet.id p;
    if Hashtbl.length buffer >= cfg.buffer_pkts then begin
      match Queue.take_opt buffer_fifo with
      | Some old -> Hashtbl.remove buffer old
      | None -> ()
    end;
    Hashtbl.replace buffer p.Packet.uid p;
    Queue.push p.Packet.uid buffer_fifo;
    if Hashtbl.length buffer > !buffer_peak then buffer_peak := Hashtbl.length buffer;
    ignore (Link.send a2b p)
  in
  let a_ingress (p : Packet.t) = a_forward p in
  let a_on_quack q =
    match Q.Sender_state.on_quack a_ss q with
    | Ok rep when not rep.Q.Sender_state.stale ->
        (* confirmed-past-B packets no longer need copies *)
        List.iter
          (fun (p : Packet.t) -> Hashtbl.remove buffer p.Packet.uid)
          rep.Q.Sender_state.acked;
        (* local retransmission of decoded losses (and indeterminate
           candidates: duplicates are harmless, gaps are not) *)
        let resend (p : Packet.t) =
          let now = Engine.now engine in
          let held =
            match Hashtbl.find_opt last_resend p.Packet.uid with
            | Some t0 -> Time.diff now t0 < resend_holdoff
            | None -> false
          in
          if (not held) && Hashtbl.mem buffer p.Packet.uid then begin
            Hashtbl.replace last_resend p.Packet.uid now;
            incr proxy_retx;
            a_forward p
          end
        in
        List.iter resend rep.Q.Sender_state.lost;
        (* adaptive frequency (§4.3): target a constant number of
           missing packets per quACK *)
        if cfg.adaptive then begin
          let n_acked = List.length rep.Q.Sender_state.acked
          and n_lost = List.length rep.Q.Sender_state.lost in
          let total = n_acked + n_lost in
          incr since_freq_update;
          if total > 0 && !since_freq_update >= 4 then begin
            since_freq_update := 0;
            let observed_loss = float_of_int n_lost /. float_of_int total in
            let next =
              Q.Frequency.adapt_interval ~current:!quack_every
                ~observed_loss ~target_missing:cfg.target_missing
            in
            (* The quACK must arrive (and the refill land) before the
               end hosts' own loss detection notices the gap, so the
               interval is clamped to stay well inside one end-to-end
               reordering window regardless of what the loss ratio
               alone would suggest. *)
            let next = max 8 (min next 64) in
            if next <> !quack_every then begin
              quack_every := next;
              incr freq_updates;
              ignore
                (Link.send a2b
                   (Sframes.freq_packet ~dst:"proxyB" ~interval_packets:next
                      ~flow:0 ~now:(Engine.now engine)))
            end
          end
        end
    | Ok _ -> ()
    | Error (`Threshold_exceeded _) ->
        (* abandon and resync; the packets' fate falls back to e2e *)
        ignore (Q.Sender_state.resync_to a_ss q)
    | Error (`Config_mismatch _) -> ()
  in

  (* ---- proxy B: receiver side of the subpath --------------------- *)
  let b_rx = Q.Receiver_state.create ~bits:cfg.bits ~threshold:cfg.threshold () in
  let b_since = ref 0 in
  let b_interval = ref cfg.initial_quack_every in
  let b_quack_index = ref 0 in
  let b_emit () =
    b_since := 0;
    let q = Q.Receiver_state.emit b_rx in
    incr b_quack_index;
    incr quacks;
    let pkt =
      Sframes.quack_packet ~quack:q ~dst:"proxyA" ~index:!b_quack_index
        ~count_omitted:false ~flow:0 ~now:(Engine.now engine)
    in
    quack_bytes := !quack_bytes + pkt.Packet.size;
    ignore (Link.send b2a pkt)
  in
  (* Time backstop: at low data rates a packet-count interval is slow
     in wall-clock terms, so also quACK once per ~subpath RTT while
     packets are pending. *)
  let b_timer_period = max (Time.ms 1) (2 * cfg.middle.Path.delay) in
  let rec b_timer () =
    if !b_since > 0 then b_emit ();
    if Engine.now engine < cfg.until then
      Engine.schedule engine ~delay:b_timer_period b_timer
  in
  Engine.schedule engine ~delay:b_timer_period b_timer;
  let b_ingress (p : Packet.t) =
    match p.Packet.payload with
    | Sframes.Freq_update { dst = "proxyB"; interval_packets } ->
        b_interval := interval_packets
    | _ ->
        ignore (Q.Receiver_state.on_receive b_rx p.Packet.id);
        incr b_since;
        if !b_since >= !b_interval then b_emit ();
        ignore (Link.send b2c p)
  in

  (* ---- end hosts -------------------------------------------------- *)
  let sender =
    Transport.Sender.create engine ~mss:cfg.mss
      ~pkt_threshold:(pkt_threshold cfg) ~total_units:cfg.units
      ~egress:(fun p -> ignore (Link.send s2a p))
      ()
  in
  let receiver =
    Transport.Receiver.create engine ~total_units:cfg.units
      ~send_ack:(fun p -> ignore (Link.send c2b p))
      ()
  in

  (* ---- wiring ----------------------------------------------------- *)
  Link.set_deliver s2a a_ingress;
  Link.set_deliver a2b b_ingress;
  Link.set_deliver b2c (Transport.Receiver.deliver receiver);
  Link.set_deliver c2b (fun p -> ignore (Link.send b2a p));
  Link.set_deliver b2a (fun p ->
      match p.Packet.payload with
      | Sframes.Quack_frame { quack; dst = "proxyA"; _ } -> a_on_quack quack
      | _ -> ignore (Link.send a2s p));
  Link.set_deliver a2s (Transport.Sender.deliver_ack sender);
  let flow = Transport.Flow.run engine ~sender ~receiver ~until:cfg.until () in
  {
    flow;
    proxy_retransmissions = !proxy_retx;
    quacks = !quacks;
    quack_bytes = !quack_bytes;
    freq_updates = !freq_updates;
    final_quack_every = !quack_every;
    buffer_peak = !buffer_peak;
    subpath_loss_observed = Link.loss_rate_observed a2b;
  }
