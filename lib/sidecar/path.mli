(** Path descriptions and the no-sidecar baseline.

    A path is one or more duplex segments in series; proxies sit at
    the junctions. Loss is described declaratively so every scenario
    run gets fresh (unshared) loss-model state. *)

type loss_spec =
  | No_loss
  | Bernoulli of float
  | Gilbert of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_bad : float;
    }

val to_loss : loss_spec -> Netsim.Loss.t
val average_loss : loss_spec -> float
val pp_loss : Format.formatter -> loss_spec -> unit

type segment = {
  rate_bps : int;
  delay : Netsim.Sim_time.span;  (** one-way propagation *)
  loss : loss_spec;  (** applied to the forward (data) direction *)
  rev_loss : loss_spec;  (** return direction (ACKs, quACKs) *)
  codel : bool;  (** CoDel AQM on the forward queue (default drop-tail) *)
}

val segment :
  ?loss:loss_spec -> ?rev_loss:loss_spec -> ?codel:bool -> rate_bps:int ->
  delay:Netsim.Sim_time.span -> unit -> segment
(** @raise Invalid_argument (naming the offending field and value) on
    [rate_bps <= 0], negative [delay], or any loss probability outside
    [\[0, 1\]] (NaN included). *)

val rtt : segment list -> Netsim.Sim_time.span
(** End-to-end round-trip propagation of the path. *)

val satellite : segment
(** High-BDP GEO-like hop: 20 Mbps, 280 ms one-way, rare deep
    Gilbert-Elliott bursts. A preset for the mobility/multipath
    scenario families (§5). *)

val cellular : segment
(** Cellular/LTE-like last mile: 30 Mbps, 40 ms one-way, frequent
    shallow Gilbert-Elliott bursts. *)

val congested_cell : segment
(** A congested cell: [cellular]'s delay class but a markedly worse
    loss regime (25 Mbps, 50 ms, burstier). The default handover
    target and second multipath branch — same delay class, so one
    end-to-end RTT estimator stays valid across both. *)

type built = {
  engine : Netsim.Engine.t;
  fwd : Netsim.Link.t array;  (** forward links, sender side first *)
  rev : Netsim.Link.t array;  (** return links, {e receiver} side first *)
}

val build : ?seed:int -> segment list -> built
(** Instantiate links (delivery unwired — callers connect nodes). *)

val baseline :
  ?seed:int ->
  ?units:int ->
  ?mss:int ->
  ?ack_every:int ->
  ?cc:(mss:int -> unit -> Transport.Cc.t) ->
  ?until:Netsim.Sim_time.t ->
  segment list ->
  Transport.Flow.result
(** The comparison point for every sidecar protocol: the same path
    with plain store-and-forward junctions and no sidecar anywhere. *)
