(** Congestion-control division (§2.1, Fig. 1(b)).

    The path is split at a proxy: server→proxy (the "near" segment)
    and proxy→client (the "far" segment). The base protocol stays
    end-to-end — the proxy never reads or modifies connection packets
    — but each segment gets its own control loop driven by quACKs:

    - the {e client} sidecar quACKs once per interval to the proxy;
    - the {e proxy} sidecar paces its forwarding buffer with an AIMD
      window over the far segment, fed by client quACKs, and quACKs
      once per interval to the server;
    - the {e server} sidecar decodes proxy quACKs and drives the
      transport window from them ([external_cc]); end-to-end ACKs
      still govern retransmission, exactly as the paper prescribes.

    This recovers split-PEP behaviour (fast ramp-up on the near
    segment, loss isolation on the far one) with zero changes to the
    base protocol. *)

type config = {
  units : int;
  mss : int;
  near : Path.segment;  (** server→proxy *)
  far : Path.segment;  (** proxy→client *)
  quack_interval : Netsim.Sim_time.span option;
      (** [None]: once per segment RTT (the §4.3 guidance) *)
  threshold : int;
  bits : int;
  proxy_buffer_pkts : int;
  seed : int;
  until : Netsim.Sim_time.t;
}

val default_config : config
(** A fast clean near segment (100 Mbit/s, 5 ms) and a slow lossy far
    segment (20 Mbit/s, 25 ms, 1% loss) — the classic satellite/WWAN
    PEP setting. *)

type report = {
  flow : Transport.Flow.result;
  quacks_from_client : int;
  quacks_from_proxy : int;
  quack_bytes : int;  (** total sidecar bytes on return paths *)
  proxy_buffer_peak : int;
  proxy_window_final : int;
  server_decode_failures : int;
}

val pp_report : Format.formatter -> report -> unit

val json_report : report -> Obs.Json.t
(** Schema-stable JSON mirror of {!report}. *)

val run : config -> report
val baseline : config -> Transport.Flow.result
(** Identical path, no sidecar anywhere. *)
