module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Q = Sidecar_quack

type config = {
  units_per_flow : int;
  mss : int;
  near : Path.segment;
  far : Path.segment;
  quack_interval : Time.span option;
  threshold : int;
  seed : int;
  until : Time.t;
}

let default_config =
  {
    units_per_flow = 1500;
    mss = 1460;
    near = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 28) ();
    far =
      Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2)
        ~loss:(Path.Bernoulli 0.005) ();
    quack_interval = None;
    threshold = 64;
    seed = 1;
    until = Time.s 300;
  }

type flow_result = {
  fct : Time.span option;
  goodput_mbps : float;
  retransmissions : int;
  congestion_events : int;
}

type report = {
  flows : flow_result array;
  jain_index : float;
  total_goodput_mbps : float;
}

let jain xs =
  let n = float_of_int (Array.length xs) in
  let sum = Array.fold_left ( +. ) 0. xs in
  let sumsq = Array.fold_left (fun a x -> a +. (x *. x)) 0. xs in
  if sumsq = 0. then 1. else sum *. sum /. (n *. sumsq)

let pp_report ppf r =
  Array.iteri
    (fun i f ->
      Format.fprintf ppf "flow %d: fct %s, %.2f Mbit/s, retx %d, cc-events %d@." i
        (match f.fct with
        | Some t -> Format.asprintf "%a" Time.pp t
        | None -> "-")
        f.goodput_mbps f.retransmissions f.congestion_events)
    r.flows;
  Format.fprintf ppf "Jain fairness index: %.3f; aggregate %.2f Mbit/s"
    r.jain_index r.total_goodput_mbps

let flow_result ~mss ~units (sender : Transport.Sender.t)
    (receiver : Transport.Receiver.t) =
  let fct = Transport.Receiver.complete_at receiver in
  let stats = Transport.Sender.stats sender in
  let goodput =
    match fct with
    | Some f when f > 0 -> float_of_int (units * mss * 8) /. Time.to_float_s f /. 1e6
    | _ -> 0.
  in
  {
    fct;
    goodput_mbps = goodput;
    retransmissions = stats.Transport.Sender.retransmissions;
    congestion_events = stats.Transport.Sender.congestion_events;
  }

let summarize ~mss ~units pairs =
  let flows = Array.map (fun (s, r) -> flow_result ~mss ~units s r) pairs in
  let rates = Array.map (fun f -> f.goodput_mbps) flows in
  {
    flows;
    jain_index = jain rates;
    total_goodput_mbps = Array.fold_left ( +. ) 0. rates;
  }

(* Shared-topology construction: two near segments, one far segment.
   [attach] wires per-flow behaviour at the proxy junction. *)
let build_links cfg =
  let engine = Engine.create ~seed:cfg.seed () in
  let mk_link name seg ~loss =
    Link.create engine ~name ~rate_bps:seg.Path.rate_bps ~delay:seg.Path.delay
      ~loss:(Path.to_loss loss) ()
  in
  let s2p = Array.init 2 (fun i ->
      mk_link (Printf.sprintf "s2p%d" i) cfg.near ~loss:cfg.near.Path.loss)
  in
  let p2s = Array.init 2 (fun i ->
      mk_link (Printf.sprintf "p2s%d" i) cfg.near ~loss:cfg.near.Path.rev_loss)
  in
  let p2c = mk_link "p2c" cfg.far ~loss:cfg.far.Path.loss in
  let c2p = mk_link "c2p" cfg.far ~loss:cfg.far.Path.rev_loss in
  (engine, s2p, p2s, p2c, c2p)

let baseline cfg =
  let engine, s2p, p2s, p2c, c2p = build_links cfg in
  (* Construction has no engine side effects, so senders and receivers
     can be built up front; options and Option.get are unnecessary. *)
  let senders =
    Array.init 2 (fun i ->
        Transport.Sender.create engine ~mss:cfg.mss ~flow:i
          ~total_units:cfg.units_per_flow
          ~egress:(fun p -> ignore (Link.send s2p.(i) p))
          ())
  in
  let receivers =
    Array.init 2 (fun i ->
        Transport.Receiver.create engine ~flow:i ~total_units:cfg.units_per_flow
          ~send_ack:(fun p -> ignore (Link.send c2p p))
          ())
  in
  for i = 0 to 1 do
    Link.set_deliver s2p.(i) (fun p -> ignore (Link.send p2c p));
    Link.set_deliver p2s.(i) (Transport.Sender.deliver_ack senders.(i))
  done;
  Link.set_deliver p2c (fun p ->
      Transport.Receiver.deliver receivers.(p.Packet.flow) p);
  Link.set_deliver c2p (fun p -> ignore (Link.send p2s.(p.Packet.flow) p));
  Array.iter Transport.Sender.start senders;
  Engine.run ~until:cfg.until engine;
  summarize ~mss:cfg.mss ~units:cfg.units_per_flow
    (Array.init 2 (fun i -> (senders.(i), receivers.(i))))

(* Per-flow CC-division state at the proxy: one {!Proto_cc} flow
   instance each (AIMD window + observe/buffer/pace), competing for the
   shared far link. The protocol instances are driven directly — the
   same code the single-flow {!Cc_division} harness and the multi-flow
   runtime run behind a {!Node}. *)
let run cfg =
  let engine, s2p, p2s, p2c, c2p = build_links cfg in
  let wire = cfg.mss + 40 in
  let quack_interval =
    match cfg.quack_interval with
    | Some i -> i
    | None -> max (Time.ms 1) (Path.rtt [ cfg.far ])
  in
  let client_rx = Array.init 2 (fun _ ->
      Q.Receiver_state.create ~threshold:cfg.threshold ())
  in
  let proto =
    Proto_cc.make
      {
        Proto_cc.bits = Q.Sender_state.default_config.Q.Sender_state.bits;
        threshold = cfg.threshold;
        count_bits = None;
        wire;
        (* unbounded: this experiment studies window fairness, not
           buffer contention *)
        buffer_pkts = max_int;
        upstream =
          Proto_cc.Timer { interval = quack_interval; high_watermark = max_int };
        overflow = Proto_cc.Drop;
        field = None;
        datapath = Protocol.Ref;
      }
  in
  let counters = Protocol.fresh_counters () in
  let flows =
    Array.init 2 (fun i ->
        proto.Protocol.init
          {
            Protocol.engine;
            flow = i;
            forward = (fun p -> ignore (Link.send p2c p));
            backward = (fun p -> ignore (Link.send p2s.(i) p));
            counters;
          })
  in
  let quack_idx = Array.make 2 0 in
  let server_ss = Array.init 2 (fun _ ->
      Q.Sender_state.create
        { Q.Sender_state.default_config with threshold = cfg.threshold })
  in
  let senders =
    Array.init 2 (fun i ->
        Transport.Sender.create engine ~mss:cfg.mss ~flow:i ~external_cc:true
          ~cc:(Transport.Newreno.create ~mss:wire ())
          ~on_transmit:(fun p ->
            Q.Sender_state.on_send server_ss.(i) ~id:p.Packet.id p.Packet.size)
          ~total_units:cfg.units_per_flow
          ~egress:(fun p -> ignore (Link.send s2p.(i) p))
          ())
  in
  let receivers =
    Array.init 2 (fun i ->
        Transport.Receiver.create engine ~flow:i ~total_units:cfg.units_per_flow
          ~on_data:(fun p -> ignore (Q.Receiver_state.on_receive client_rx.(i) p.Packet.id))
          ~send_ack:(fun p -> ignore (Link.send c2p p))
          ())
  in
  for i = 0 to 1 do
    Link.set_deliver s2p.(i) (fun p -> flows.(i).Protocol.on_data p);
    Link.set_deliver p2s.(i) (fun p ->
        match p.Packet.payload with
        | Sframes.Quack_frame { quack; dst = "server"; _ } -> (
            match Q.Sender_state.on_quack server_ss.(i) quack with
            | Ok rep when not rep.Q.Sender_state.stale ->
                let bytes = List.fold_left ( + ) 0 rep.Q.Sender_state.acked in
                if rep.Q.Sender_state.lost <> [] then
                  Transport.Sender.external_congestion senders.(i);
                if bytes > 0 then
                  Transport.Sender.external_ack senders.(i) ~acked_bytes:bytes
                    ~rtt:None
            | Ok _ -> ()
            | Error _ ->
                ignore (Q.Sender_state.resync_to server_ss.(i) quack);
                Transport.Sender.external_congestion senders.(i))
        | _ -> Transport.Sender.deliver_ack senders.(i) p)
  done;
  Link.set_deliver p2c (fun p ->
      Transport.Receiver.deliver receivers.(p.Packet.flow) p);
  Link.set_deliver c2p (fun p ->
      match p.Packet.payload with
      | Sframes.Quack_frame { quack; dst = "proxy"; index; _ } ->
          flows.(p.Packet.flow).Protocol.on_feedback ~index quack
      | _ -> ignore (Link.send p2s.(p.Packet.flow) p));
  let all_done () =
    Array.for_all
      (fun r -> Transport.Receiver.complete_at r <> None)
      receivers
  in
  let rec timers i () =
    (* client quACK for flow i; proxy quACK for flow i rides the same
       tick (the quACK frame carries the flow id as its 5-tuple) *)
    let cq = Q.Receiver_state.emit client_rx.(i) in
    quack_idx.(i) <- quack_idx.(i) + 1;
    ignore
      (Link.send c2p
         (Sframes.quack_packet ~src:"client" ~quack:cq ~dst:"proxy"
            ~index:quack_idx.(i) ~count_omitted:false ~flow:i
            ~now:(Engine.now engine) ()));
    flows.(i).Protocol.on_timer ();
    if Engine.now engine < cfg.until && not (all_done ()) then
      Engine.schedule engine ~delay:quack_interval (timers i)
  in
  for i = 0 to 1 do
    Engine.schedule engine ~delay:quack_interval (timers i)
  done;
  Array.iter Transport.Sender.start senders;
  Engine.run ~until:cfg.until engine;
  summarize ~mss:cfg.mss ~units:cfg.units_per_flow
    (Array.init 2 (fun i -> (senders.(i), receivers.(i))))
