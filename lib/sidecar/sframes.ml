module Packet = Netsim.Packet
module Quack = Sidecar_quack.Quack
module Wire = Sidecar_quack.Wire

type Packet.payload +=
  | Quack_frame of { quack : Quack.t; src : string; dst : string; index : int }
  | Freq_update of { dst : string; interval_packets : int }

let encapsulation = 28 (* UDP + IPv4 *)

let quack_wire_size q ~count_omitted =
  let count_bits = if count_omitted then 0 else q.Quack.count_bits in
  Wire.packed_size ~bits:q.Quack.bits ~threshold:(Quack.threshold q) ~count_bits
  + Wire.frame_overhead + encapsulation

let quack_packet ?(src = "proxy") ~quack ~dst ~index ~count_omitted ~flow ~now
    () =
  Packet.make ~uid:(-2) ~flow ~id:0 ~seq:index
    ~size:(quack_wire_size quack ~count_omitted)
    ~payload:(Quack_frame { quack; src; dst; index })
    ~sent_at:now ()

let freq_packet ~dst ~interval_packets ~flow ~now =
  Packet.make ~uid:(-3) ~flow ~id:0 ~seq:0 ~size:(encapsulation + 8)
    ~payload:(Freq_update { dst; interval_packets })
    ~sent_at:now ()
