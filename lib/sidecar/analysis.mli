(** Analytic model of loss recovery — the back-of-envelope version of
    the Markov-chain analysis the paper cites (Barik et al. 2020,
    its ref [1]) to justify in-network retransmission: recovery is
    worth doing in the network exactly when the subpath's recovery
    loop is much shorter than the end-to-end one.

    The model is deliberately simple (per-packet, geometric retries,
    no congestion-control coupling); it predicts {e which side wins
    and by roughly what factor}, which is what the simulator's FCT
    sweeps then confirm with all the messy dynamics included. *)

type path_model = {
  loss : float;  (** per-attempt loss probability on the lossy hop *)
  recovery_rtt : float;
      (** seconds from loss to redelivery for one retry: the control
          loop's RTT plus its detection delay *)
}

val expected_attempts : loss:float -> float
(** Mean transmissions per delivered packet, [1 / (1 - loss)].
    @raise Invalid_argument unless [0 <= loss < 1]. *)

val recovery_latency : path_model -> float
(** Expected extra delivery latency of a packet that was lost at least
    once: [recovery_rtt / (1 - loss)] (geometric retries). *)

val mean_latency_overhead : path_model -> float
(** Expected extra latency averaged over {e all} packets:
    [loss * recovery_latency]. *)

val speedup :
  loss:float -> e2e:path_model -> in_network:path_model -> float
(** Ratio of mean latency overheads (e2e / in-network) at a common
    loss rate — the predicted benefit of recovering on the subpath.
    With both models at the same loss this reduces to the ratio of
    recovery RTTs, which is the paper's §2.3 intuition made precise. *)

val quack_detection_delay :
  interval_packets:int -> packet_rate_pps:float -> subpath_owd:float -> float
(** Expected time from a loss to the quACK that reveals it: half the
    emission interval plus the quACK's one-way propagation. *)
