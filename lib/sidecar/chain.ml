module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Time = Netsim.Sim_time

let wire built ~until ~continue specs =
  let { Path.engine; fwd; rev } = built in
  let n = Array.length fwd in
  if List.length specs <> n - 1 then
    invalid_arg
      (Printf.sprintf
         "Chain.wire: %d node(s) for %d junction(s) (segments - 1)"
         (List.length specs) (n - 1));
  List.mapi
    (fun j spec ->
      let ports =
        {
          Node.engine;
          index = j;
          forward = (fun p -> ignore (Link.send fwd.(j + 1) p));
          backward = (fun p -> ignore (Link.send rev.(n - 1 - j) p));
          until;
          continue;
        }
      in
      let node = spec ports in
      Link.set_deliver fwd.(j) node.Node.fwd;
      Link.set_deliver rev.(n - 2 - j) node.Node.rev;
      node)
    specs

type client_ports = {
  engine : Engine.t;
  inject : Packet.t -> unit;
  until : Time.t;
  receiver : unit -> Transport.Receiver.t option;
  complete : unit -> bool;
}

type client_hooks = {
  on_data : (Packet.t -> unit) option;
  on_ack : (Packet.t -> unit) option;
  start : unit -> unit;
}

type outcome = { flow : Transport.Flow.result; built : Path.built }

let run ?(seed = 1) ?(units = 2000) ?(mss = 1460) ?(ack_every = 2)
    ?pkt_threshold ?(external_cc = false) ?cc ?on_transmit ?server_quack
    ?client ?(nodes = []) ?(until = Time.s 300) segments =
  let built = Path.build ~seed segments in
  let { Path.engine; fwd; rev } = built in
  let n = Array.length fwd in
  let receiver_ref = ref None in
  let complete () =
    match !receiver_ref with
    | Some r -> Transport.Receiver.complete_at r <> None
    | None -> false
  in
  let continue () = Engine.now engine < until && not (complete ()) in
  let node_ts = wire built ~until ~continue nodes in
  let sender =
    Transport.Sender.create engine ~mss ?pkt_threshold ~external_cc ?cc
      ?on_transmit ~total_units:units
      ~egress:(fun p -> ignore (Link.send fwd.(0) p))
      ()
  in
  let inject p = ignore (Link.send rev.(0) p) in
  let cp =
    { engine; inject; until; receiver = (fun () -> !receiver_ref); complete }
  in
  let hooks = Option.map (fun f -> f cp) client in
  let on_data = Option.bind hooks (fun h -> h.on_data) in
  let send_ack =
    match Option.bind hooks (fun h -> h.on_ack) with
    | None -> inject
    | Some tap ->
        fun p ->
          tap p;
          inject p
  in
  let receiver =
    Transport.Receiver.create engine ~ack_every ?on_data ~total_units:units
      ~send_ack ()
  in
  receiver_ref := Some receiver;
  Link.set_deliver fwd.(n - 1) (Transport.Receiver.deliver receiver);
  (match server_quack with
  | None -> Link.set_deliver rev.(n - 1) (Transport.Sender.deliver_ack sender)
  | Some mk ->
      let on_quack = mk ~sender in
      Link.set_deliver rev.(n - 1) (fun p ->
          match p.Packet.payload with
          | Sframes.Quack_frame { quack; dst; index; _ }
            when String.equal dst Protocol.server_addr ->
              on_quack ~index quack
          | _ -> Transport.Sender.deliver_ack sender p));
  (* Deterministic start order: the client sidecar schedules first,
     then nodes left to right — ties in the event heap resolve by
     insertion order, so this order is part of the pinned behaviour. *)
  (match hooks with Some h -> h.start () | None -> ());
  List.iter Node.start node_ts;
  let flow = Transport.Flow.run engine ~sender ~receiver ~until () in
  { flow; built }
