module Packet = Netsim.Packet
module Quack = Sidecar_quack.Quack
module Psum = Sidecar_quack.Psum
module Primes = Sidecar_field.Primes

type config = {
  addr : string;
  bits : int;
  threshold : int;
  count_bits : int;
  quack_every : int;
  field : (module Sidecar_field.Modular.S) option;
}

type snapshot = {
  bits : int;
  threshold : int;
  modulus : int;
  sums : int array;
  count : int;
  index : int;
}

let snapshot_wire_bytes s =
  (* sums packed like a quACK, plus full-width count + emission index
     + flow tag, plus the same UDP/IP encapsulation a quACK pays. *)
  ((Array.length s.sums * s.bits) + 7) / 8 + 24 + Sframes.encapsulation

type flow_state = { psum : Psum.t; mutable index : int; mutable since : int }

type handle = {
  cfg : config;
  modulus : int;
  live : (int, flow_state) Hashtbl.t;
  pending : (int, snapshot) Hashtbl.t;
  mutable installs : int;
  mutable install_merges : int;
}

let installs h = h.installs
let install_merges h = h.install_merges

let snapshot h ~flow =
  match Hashtbl.find_opt h.live flow with
  | None -> None
  | Some st ->
      Some
        {
          bits = h.cfg.bits;
          threshold = h.cfg.threshold;
          modulus = h.modulus;
          sums = Psum.sums st.psum;
          count = Psum.count st.psum;
          index = st.index;
        }

let mk_psum h =
  Psum.create ~bits:h.cfg.bits ?field:h.cfg.field ~threshold:h.cfg.threshold ()

let install h ~flow s =
  if s.bits <> h.cfg.bits || s.threshold <> h.cfg.threshold then
    invalid_arg "Migration.install: incompatible snapshot";
  if s.modulus <> h.modulus then
    invalid_arg "Migration.install: mismatched moduli";
  h.installs <- h.installs + 1;
  match Hashtbl.find_opt h.live flow with
  | None ->
      (* Normal takeover: the control message beat the first migrated
         data packet, so the snapshot seeds admission ([init] below). *)
      Hashtbl.replace h.pending flow s
  | Some st ->
      (* The takeover raced with data: this sidecar already admitted
         the flow and sketched post-migration arrivals. The snapshot
         covers exactly the pre-migration packets, so the union is a
         straight [Psum.merge]; the emission index advances past both
         histories so the sender never sees a regression from here. *)
      h.install_merges <- h.install_merges + 1;
      let pre = mk_psum h in
      Psum.set_state pre ~sums:s.sums ~count:s.count;
      let merged = Psum.merge pre st.psum in
      Psum.set_state st.psum ~sums:(Psum.sums merged) ~count:(Psum.count merged);
      st.index <- st.index + s.index

let make cfg =
  if cfg.quack_every <= 0 then
    invalid_arg "Migration.make: quack interval must be positive";
  let modulus =
    match cfg.field with
    | Some f ->
        let module F = (val f : Sidecar_field.Modular.S) in
        F.modulus
    | None -> Primes.modulus_for_bits cfg.bits
  in
  let h =
    {
      cfg;
      modulus;
      live = Hashtbl.create 64;
      pending = Hashtbl.create 8;
      installs = 0;
      install_merges = 0;
    }
  in
  let init (ctx : Protocol.ctx) =
    let st =
      match Hashtbl.find_opt h.pending ctx.flow with
      | Some s ->
          Hashtbl.remove h.pending ctx.flow;
          let psum = mk_psum h in
          Psum.set_state psum ~sums:s.sums ~count:s.count;
          { psum; index = s.index; since = 0 }
      | None -> { psum = mk_psum h; index = 0; since = 0 }
    in
    Hashtbl.replace h.live ctx.flow st;
    let drop () = Hashtbl.remove h.live ctx.flow in
    let on_data p =
      Psum.insert st.psum p.Packet.id;
      st.since <- st.since + 1;
      if st.since >= cfg.quack_every then begin
        st.since <- 0;
        st.index <- st.index + 1;
        Protocol.send_quack ~src:cfg.addr ctx ~dst:Protocol.server_addr
          ~index:st.index ~count_omitted:false
          (Quack.of_psum ~count_bits:cfg.count_bits st.psum)
      end;
      ctx.forward p
    in
    let info () =
      { Protocol.no_info with Protocol.upstream_interval = cfg.quack_every }
    in
    {
      Protocol.on_data;
      on_feedback = (fun ~index:_ _ -> ());
      on_freq = (fun _ -> ());
      on_timer = (fun () -> ());
      on_evict = drop;
      on_release = drop;
      info;
    }
  in
  ({ Protocol.name = "migration"; addr = cfg.addr; timer = None; init }, h)
