module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Q = Sidecar_quack

type config = {
  units : int;
  mss : int;
  near : Path.segment;
  far : Path.segment;
  quack_every : int;
  client_ack_every : int;
  warmup_units : int;
  threshold : int;
  bits : int;
  omit_count : bool;
  seed : int;
  until : Time.t;
}

let default_config =
  {
    units = 2000;
    mss = 1460;
    near = Path.segment ~rate_bps:50_000_000 ~delay:(Time.ms 5) ();
    far = Path.segment ~rate_bps:50_000_000 ~delay:(Time.ms 25) ();
    quack_every = 32;
    client_ack_every = 32;
    warmup_units = 200;
    threshold = 20;
    bits = 32;
    omit_count = true;
    seed = 1;
    until = Time.s 300;
  }

type report = {
  flow : Transport.Flow.result;
  client_acks : int;
  client_ack_bytes : int;
  quacks : int;
  quack_bytes : int;
  window_freed_early_bytes : int;
  spurious_retx : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%a@,client e2e ACKs: %d (%d B)@,proxy quACKs: %d (%d B)@,\
     window freed early: %d B@,spurious retx: %d@]"
    Transport.Flow.pp_result r.flow r.client_acks r.client_ack_bytes r.quacks
    r.quack_bytes r.window_freed_early_bytes r.spurious_retx

let json_report r =
  Obs.Json.Obj
    [
      ("flow", Transport.Flow.json_result r.flow);
      ("client_acks", Obs.Json.Int r.client_acks);
      ("client_ack_bytes", Obs.Json.Int r.client_ack_bytes);
      ("quacks", Obs.Json.Int r.quacks);
      ("quack_bytes", Obs.Json.Int r.quack_bytes);
      ("window_freed_early_bytes", Obs.Json.Int r.window_freed_early_bytes);
      ("spurious_retx", Obs.Json.Int r.spurious_retx);
    ]

let baseline cfg =
  let ack_bytes = ref 0 in
  let { Path.engine; fwd; rev } = Path.build ~seed:cfg.seed [ cfg.near; cfg.far ] in
  Link.set_deliver fwd.(0) (fun p -> ignore (Link.send fwd.(1) p));
  Link.set_deliver rev.(0) (fun p ->
      ack_bytes := !ack_bytes + p.Packet.size;
      ignore (Link.send rev.(1) p));
  let sender =
    Transport.Sender.create engine ~mss:cfg.mss ~total_units:cfg.units
      ~egress:(fun p -> ignore (Link.send fwd.(0) p))
      ()
  in
  let receiver =
    Transport.Receiver.create engine ~ack_every:2 ~total_units:cfg.units
      ~send_ack:(fun p -> ignore (Link.send rev.(0) p))
      ()
  in
  Link.set_deliver fwd.(1) (Transport.Receiver.deliver receiver);
  Link.set_deliver rev.(1) (Transport.Sender.deliver_ack sender);
  let result = Transport.Flow.run engine ~sender ~receiver ~until:cfg.until () in
  (result, !ack_bytes)

let run cfg =
  let quacks = ref 0 in
  let client_acks = ref 0 in
  let client_ack_bytes = ref 0 in
  let freed_early = ref 0 in

  (* ---- server sidecar -------------------------------------------- *)
  (* meta: the packet seq, so quACK-acked ids map back to window
     entries for the provisional release. *)
  let server_ss =
    Q.Sender_state.create
      { Q.Sender_state.default_config with bits = cfg.bits; threshold = cfg.threshold }
  in
  let on_transmit p = Q.Sender_state.on_send server_ss ~id:p.Packet.id p.Packet.seq in
  let server_quack ~sender ~index (q : Q.Quack.t) =
    (* Count-omitted mode (§4.3): the proxy quACKs every [n] packets,
       so the [index]-th quACK stands for an implicit count of
       [n * index] — robust to lost quACKs because the sums are
       cumulative. *)
    let q =
      if cfg.omit_count then { q with Q.Quack.count = cfg.quack_every * index }
      else q
    in
    incr quacks;
    match Q.Sender_state.on_quack server_ss q with
    | Ok rep when not rep.Q.Sender_state.stale ->
        let seqs = rep.Q.Sender_state.acked in
        freed_early := !freed_early + Transport.Sender.sidecar_ack sender ~seqs
    | Ok _ -> ()
    | Error (`Threshold_exceeded _) -> ignore (Q.Sender_state.resync_to server_ss q)
    | Error (`Config_mismatch _) -> ()
  in

  (* ---- proxy ------------------------------------------------------ *)
  let counters = Protocol.fresh_counters () in
  let proto =
    Proto_ar.make
      {
        Proto_ar.bits = cfg.bits;
        threshold = cfg.threshold;
        count_bits = None;
        quack_every = cfg.quack_every;
        omit_count = cfg.omit_count;
        field = None;
        datapath = Protocol.Ref;
      }
  in

  (* ---- client ----------------------------------------------------- *)
  (* The ACK-frequency extension keeps immediate ACKs during start-up
     (the sender needs the clocking) and goes sparse once the flow is
     established -- the draft's intended use. *)
  let client (cp : Chain.client_ports) =
    let delivered = ref 0 in
    {
      Chain.on_data =
        Some
          (fun _ ->
            incr delivered;
            if !delivered = cfg.warmup_units then
              match cp.Chain.receiver () with
              | Some r -> Transport.Receiver.set_ack_every r cfg.client_ack_every
              | None -> ());
      on_ack =
        Some
          (fun p ->
            incr client_acks;
            client_ack_bytes := !client_ack_bytes + p.Packet.size);
      start = (fun () -> ());
    }
  in

  let outcome =
    Chain.run ~seed:cfg.seed ~units:cfg.units ~mss:cfg.mss ~on_transmit
      ~server_quack ~client
      ~nodes:[ Node.of_protocol ~counters proto ]
      ~until:cfg.until
      [ cfg.near; cfg.far ]
  in
  let flow = outcome.Chain.flow in
  {
    flow;
    client_acks = !client_acks;
    client_ack_bytes = !client_ack_bytes;
    quacks = !quacks;
    quack_bytes = Obs.Metrics.Counter.get counters.Protocol.quack_bytes;
    window_freed_early_bytes = !freed_early;
    spurious_retx = flow.Transport.Flow.duplicates;
  }
