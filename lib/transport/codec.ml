let max_varint = (1 lsl 62) - 1

let varint_size v =
  if v < 0 || v > max_varint then invalid_arg "Codec.varint_size: out of range"
  else if v < 0x40 then 1
  else if v < 0x4000 then 2
  else if v < 0x4000_0000 then 4
  else 8

let put_varint buf v =
  match varint_size v with
  | 1 -> Buffer.add_char buf (Char.chr v)
  | 2 ->
      Buffer.add_char buf (Char.chr (0x40 lor (v lsr 8)));
      Buffer.add_char buf (Char.chr (v land 0xff))
  | 4 ->
      Buffer.add_char buf (Char.chr (0x80 lor (v lsr 24)));
      for i = 2 downto 0 do
        Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
      done
  | _ ->
      Buffer.add_char buf (Char.chr (0xC0 lor (v lsr 56)));
      for i = 6 downto 0 do
        Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
      done

let get_varint s ~pos =
  if pos >= String.length s then invalid_arg "Codec.get_varint: truncated";
  let first = Char.code s.[pos] in
  let len = 1 lsl (first lsr 6) in
  if pos + len > String.length s then invalid_arg "Codec.get_varint: truncated";
  let v = ref (first land 0x3f) in
  for i = 1 to len - 1 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  (!v, pos + len)

type frame =
  | Data of { offset : int }
  | Ack of { largest : int; ranges : (int * int) list; acked_units : int }
  | Padding of int

let data_type = 0x01
let ack_type = 0x02
let padding_type = 0x00

let encode_frames ~seq frames =
  let buf = Buffer.create 64 in
  put_varint buf seq;
  List.iter
    (fun frame ->
      match frame with
      | Data { offset } ->
          put_varint buf data_type;
          put_varint buf offset
      | Ack { largest; ranges; acked_units } ->
          put_varint buf ack_type;
          put_varint buf largest;
          put_varint buf acked_units;
          put_varint buf (List.length ranges);
          List.iter
            (fun (lo, hi) ->
              put_varint buf lo;
              put_varint buf (hi - lo))
            ranges
      | Padding n ->
          put_varint buf padding_type;
          put_varint buf n;
          Buffer.add_string buf (String.make n '\000'))
    frames;
  Buffer.contents buf

let decode_frames s =
  try
    let seq, pos = get_varint s ~pos:0 in
    let rec go pos acc =
      if pos >= String.length s then Ok (seq, List.rev acc)
      else begin
        let ty, pos = get_varint s ~pos in
        if ty = data_type then begin
          let offset, pos = get_varint s ~pos in
          go pos (Data { offset } :: acc)
        end
        else if ty = ack_type then begin
          let largest, pos = get_varint s ~pos in
          let acked_units, pos = get_varint s ~pos in
          let count, pos = get_varint s ~pos in
          if count < 0 || count > 1024 then Error "ack: absurd range count"
          else begin
            let pos = ref pos in
            let ranges = ref [] in
            (try
               for _ = 1 to count do
                 let lo, p = get_varint s ~pos:!pos in
                 let span, p = get_varint s ~pos:p in
                 ranges := (lo, lo + span) :: !ranges;
                 pos := p
               done;
               ()
             with Invalid_argument _ -> raise Exit);
            go !pos (Ack { largest; ranges = List.rev !ranges; acked_units } :: acc)
          end
        end
        else if ty = padding_type then begin
          let n, pos = get_varint s ~pos in
          if n < 0 || pos + n > String.length s then Error "padding overruns packet"
          else go (pos + n) (Padding n :: acc)
        end
        else Error (Printf.sprintf "unknown frame type %d" ty)
      end
    in
    go pos []
  with
  | Invalid_argument msg -> Error msg
  | Exit -> Error "ack: truncated ranges"
