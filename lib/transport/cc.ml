type t = {
  name : string;
  cwnd : unit -> int;
  on_ack :
    now:Netsim.Sim_time.t -> acked_bytes:int -> rtt:Netsim.Sim_time.span option -> unit;
  on_congestion : now:Netsim.Sim_time.t -> unit;
  on_timeout : unit -> unit;
  in_slow_start : unit -> bool;
}

let fixed ~cwnd_bytes =
  {
    name = "fixed";
    cwnd = (fun () -> cwnd_bytes);
    on_ack = (fun ~now:_ ~acked_bytes:_ ~rtt:_ -> ());
    on_congestion = (fun ~now:_ -> ());
    on_timeout = (fun () -> ());
    in_slow_start = (fun () -> false);
  }

let min_window ~mss = 2 * mss
