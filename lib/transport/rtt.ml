module Time = Netsim.Sim_time

type t = {
  initial_rto : Time.span;
  mutable srtt : Time.span;
  mutable rttvar : Time.span;
  mutable latest : Time.span;
  mutable samples : int;
}

let create ?(initial_rto = Time.ms 1000) () =
  { initial_rto; srtt = 0; rttvar = 0; latest = 0; samples = 0 }

let sample t rtt =
  if rtt > 0 then begin
    t.latest <- rtt;
    if t.samples = 0 then begin
      t.srtt <- rtt;
      t.rttvar <- rtt / 2
    end
    else begin
      (* rttvar = 3/4 rttvar + 1/4 |srtt - rtt|; srtt = 7/8 srtt + 1/8 rtt *)
      let err = abs (t.srtt - rtt) in
      t.rttvar <- ((3 * t.rttvar) + err) / 4;
      t.srtt <- ((7 * t.srtt) + rtt) / 8
    end;
    t.samples <- t.samples + 1
  end

let has_sample t = t.samples > 0
let srtt t = t.srtt
let rttvar t = t.rttvar
let latest t = t.latest

let rto t =
  if t.samples = 0 then t.initial_rto
  else
    let candidate = t.srtt + max (4 * t.rttvar) (Time.ms 1) in
    max candidate (Time.ms 10)

let pto t ~max_ack_delay =
  if t.samples = 0 then t.initial_rto
  else max (t.srtt + (4 * t.rttvar) + max_ack_delay) (Time.ms 1)
