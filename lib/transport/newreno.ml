type state = {
  mss : int;
  mutable cwnd : int;
  mutable ssthresh : int;
}

let create ?(initial_window_pkts = 10) ~mss () =
  let s = { mss; cwnd = initial_window_pkts * mss; ssthresh = max_int } in
  let floor_w = Cc.min_window ~mss in
  {
    Cc.name = "newreno";
    cwnd = (fun () -> s.cwnd);
    on_ack =
      (fun ~now:_ ~acked_bytes ~rtt:_ ->
        if s.cwnd < s.ssthresh then s.cwnd <- s.cwnd + acked_bytes
        else s.cwnd <- s.cwnd + max 1 (s.mss * acked_bytes / s.cwnd));
    on_congestion =
      (fun ~now:_ ->
        s.ssthresh <- max floor_w (s.cwnd / 2);
        s.cwnd <- s.ssthresh);
    on_timeout =
      (fun () ->
        s.ssthresh <- max floor_w (s.cwnd / 2);
        s.cwnd <- floor_w);
    in_slow_start = (fun () -> s.cwnd < s.ssthresh);
  }
