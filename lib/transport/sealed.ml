module Packet = Netsim.Packet

type Packet.payload += Sealed of string

[@@@sidespec "state failures: process-wide AEAD-failure tally, deterministic under a fixed seed and reset explicitly via reset_counters"]

let failures = ref 0
let auth_failures () = !failures
let reset_counters () = failures := 0

let seal_egress ~key forward (p : Packet.t) =
  match p.Packet.payload with
  | Frames.Data { offset } ->
      let plaintext = Codec.encode_frames ~seq:p.Packet.seq [ Codec.Data { offset } ] in
      (* pad so the wire packet keeps the model packet's size *)
      let pad = max 0 (p.Packet.size - Wire_image.min_size - String.length plaintext - 2) in
      let plaintext =
        if pad > 0 then
          Codec.encode_frames ~seq:p.Packet.seq
            [ Codec.Data { offset }; Codec.Padding pad ]
        else plaintext
      in
      let wire =
        Wire_image.seal key
          ~conn_id:(Int64.of_int p.Packet.flow)
          ~packet_number:(p.Packet.seq land 0xFFFFFFFF)
          ~plaintext
      in
      forward
        (Packet.make ~uid:p.Packet.uid ~flow:p.Packet.flow
           ~id:(Wire_image.extract_id wire ~bits:32)
           ~seq:p.Packet.seq ~size:(String.length wire) ~payload:(Sealed wire)
           ~sent_at:p.Packet.sent_at ())
  | _ -> forward p (* non-data packets pass through unchanged *)

let unseal_data ~key forward (p : Packet.t) =
  match p.Packet.payload with
  | Sealed wire -> (
      match Wire_image.open_ key wire with
      | Error (`Bad_tag | `Too_short) -> incr failures
      | Ok (_pn, plaintext) -> (
          match Codec.decode_frames plaintext with
          | Ok (seq, frames) ->
              List.iter
                (fun frame ->
                  match frame with
                  | Codec.Data { offset } ->
                      forward
                        (Frames.data_packet ~uid:p.Packet.uid ~flow:p.Packet.flow
                           ~id:p.Packet.id ~seq ~size:p.Packet.size ~offset
                           ~now:p.Packet.sent_at)
                  | Codec.Ack _ | Codec.Padding _ -> ())
                frames
          | Error _ -> incr failures))
  | _ -> forward p
