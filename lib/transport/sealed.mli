(** Byte-level fidelity adapter: run a connection over {e actual
    sealed bytes} inside the simulator.

    The plain {!Sender}/{!Receiver} pair models encryption with a PRF
    identifier. This adapter removes the modelling shortcut: every
    data packet is serialised ({!Codec}), sealed ({!Wire_image}), and
    travels the simulated network as ciphertext; its sidecar-visible
    identifier is {e extracted from the wire bytes}; the receiving
    end authenticates and decrypts before handing the plaintext frames
    to the normal receiver logic. An on-path element that "opens" a
    packet gets [`Bad_tag], exactly like a middlebox fishing in QUIC.

    Used by integration tests and the byte-fidelity bench to show the
    whole quACK pipeline works on ciphertext, not just on the model. *)

type Netsim.Packet.payload += Sealed of string
(** Ciphertext on the wire. Matching on this is allowed anywhere —
    it is what everyone sees — but only {!unseal_data} can interpret
    it. *)

val seal_egress :
  key:Wire_image.key ->
  (Netsim.Packet.t -> unit) ->
  Netsim.Packet.t ->
  unit
(** [seal_egress ~key forward] is an egress hook for {!Sender.create}:
    it serialises + seals each data packet and forwards a ciphertext
    packet whose [id] is {!Wire_image.extract_id} of the bytes. *)

val unseal_data :
  key:Wire_image.key ->
  (Netsim.Packet.t -> unit) ->
  Netsim.Packet.t ->
  unit
(** Inverse adapter for the receiving end: authenticate, decrypt,
    rebuild the plaintext data packet, and pass it on (to
    {!Receiver.deliver}). Packets that fail authentication are
    dropped and counted in {!auth_failures}. *)

val auth_failures : unit -> int
(** Global count of packets dropped for bad tags (tamper injection
    tests read this). *)

val reset_counters : unit -> unit
