(** Flow driver: wire a sender and a receiver across arbitrary paths,
    run the simulation, and report the metrics every experiment needs.

    The forward/return paths are plain [Packet.t -> unit] functions, so
    the same driver serves a direct two-link path, a proxied path, or
    anything the sidecar library builds. *)

type result = {
  completed : bool;
  fct : Netsim.Sim_time.span option;  (** receiver-side completion time *)
  units : int;
  transmissions : int;
  retransmissions : int;
  congestion_events : int;
  timeouts : int;
  acks_sent : int;
  duplicates : int;
  goodput_mbps : float;  (** distinct delivered payload bits / fct *)
}

val pp_result : Format.formatter -> result -> unit

val json_result : result -> Obs.Json.t
(** Schema-stable: one field per {!result} field, [fct] as [fct_ns]
    (null when incomplete). *)

val run :
  Netsim.Engine.t ->
  sender:Sender.t ->
  receiver:Receiver.t ->
  ?until:Netsim.Sim_time.t ->
  unit ->
  result
(** Start the sender, run the engine (default horizon 300 s of
    simulated time), and collect metrics. *)

val direct :
  ?seed:int ->
  ?units:int ->
  ?mss:int ->
  ?rate_bps:int ->
  ?delay:Netsim.Sim_time.span ->
  ?loss:Netsim.Loss.t ->
  ?cc:(mss:int -> unit -> Cc.t) ->
  ?ack_every:int ->
  unit ->
  result
(** Convenience: a symmetric two-link (forward data, return ACK) path
    with the given bottleneck parameters — the no-proxy baseline.
    Defaults: 2000 units, 20 Mbit/s, 20 ms one-way delay, no loss,
    NewReno. *)
