(** The sending end host of a transport connection.

    Window-based reliable delivery of [total_units] MSS-sized units:
    every transmission gets a fresh packet seq {e and} a fresh
    pseudo-random identifier (modelling per-transmission encryption —
    the property the quACK depends on). Loss detection is QUIC-style:
    a packet-reordering threshold plus a probe timeout.

    Congestion control is pluggable ({!Cc.t}) and can be driven
    {e externally}: with [~external_cc:true] the window ignores
    end-to-end ACKs (they still drive retransmission, as in §2.1) and
    moves only on {!external_ack} / {!external_congestion}, which a
    sidecar feeds from decoded quACKs. *)

type t

type stats = {
  mutable transmissions : int;  (** data packets sent, incl. retx *)
  mutable retransmissions : int;
  mutable congestion_events : int;
  mutable timeouts : int;  (** PTO fires *)
  mutable acked_units : int;  (** distinct units the peer reported *)
}

val create :
  Netsim.Engine.t ->
  ?mss:int ->
  ?header:int ->
  ?pkt_threshold:int ->
  ?max_ack_delay:Netsim.Sim_time.span ->
  ?external_cc:bool ->
  ?cc:Cc.t ->
  ?id_key:Sidecar_quack.Identifier.key ->
  ?on_transmit:(Netsim.Packet.t -> unit) ->
  ?initially_available:int ->
  ?flow:int ->
  total_units:int ->
  egress:(Netsim.Packet.t -> unit) ->
  unit ->
  t
(** Defaults: MSS 1460, 40-byte header (1500 B on the wire),
    reordering threshold 3, NewReno. [on_transmit] is the local
    sidecar tap (the server sidecar logs ids there).
    [initially_available] models a streaming source: only that many
    units may be transmitted until {!make_available} raises the
    watermark (default: everything). *)

val make_available : t -> int -> unit
(** Raise the streaming watermark: units below it become eligible for
    transmission. Monotonic; clamped to [total_units]. *)

val start : t -> unit
(** Begin transmitting; idempotent. *)

val deliver_ack : t -> Netsim.Packet.t -> unit
(** Entry point wired to the last upstream (return-path) link. *)

val external_ack :
  t -> acked_bytes:int -> rtt:Netsim.Sim_time.span option -> unit
(** Sidecar-provided delivery signal (grows the window when
    [external_cc] is set, ignored otherwise). Also (re)fills the
    window. *)

val external_congestion : t -> unit
(** Sidecar-provided congestion signal (shrinks the window when
    [external_cc] is set). *)

val sidecar_ack : t -> seqs:int list -> int
(** Provisional acknowledgement from a proxy quACK (§2.2): the listed
    packet seqs are known past the proxy, so free their window space
    now rather than a client-RTT later. The unit still needs an e2e
    ACK; if none arrives within ~3 RTO it is retransmitted (the
    paper's "use the less frequent end-to-end ACKs when retransmission
    is necessary"). Returns the bytes freed. *)

val cwnd : t -> int
val bytes_in_flight : t -> int
val stats : t -> stats
val all_acked : t -> bool
val srtt : t -> Netsim.Sim_time.span
val mss : t -> int
val wire_size : t -> int
(** Bytes per data packet on the wire (mss + header). *)

val total_units : t -> int
