module Time = Netsim.Sim_time

type state = {
  mss : int;
  alpha : float;
  beta : float;
  mutable cwnd : float;  (* segments *)
  mutable ssthresh : float;
  mutable base_rtt : Time.span;
  mutable acked_this_rtt : int;
  mutable rtt_latest : Time.span;
  mutable round_end : Time.t;
}

let create ?(initial_window_pkts = 10) ?(alpha = 2) ?(beta = 4) ~mss () =
  if beta < alpha then invalid_arg "Vegas.create: beta < alpha";
  let s =
    {
      mss;
      alpha = float_of_int alpha;
      beta = float_of_int beta;
      cwnd = float_of_int initial_window_pkts;
      ssthresh = infinity;
      base_rtt = 0;
      acked_this_rtt = 0;
      rtt_latest = 0;
      round_end = 0;
    }
  in
  let min_seg = 2. in
  let max_seg = 1e7 in
  {
    Cc.name = "vegas";
    cwnd = (fun () -> int_of_float (Float.min max_seg s.cwnd *. float_of_int s.mss));
    on_ack =
      (fun ~now ~acked_bytes ~rtt ->
        s.acked_this_rtt <- s.acked_this_rtt + acked_bytes;
        (match rtt with
        | Some r when r > 0 ->
            s.rtt_latest <- r;
            if s.base_rtt = 0 || r < s.base_rtt then s.base_rtt <- r
        | _ -> ());
        (* run the Vegas update once per RTT-round *)
        if now >= s.round_end && s.rtt_latest > 0 && s.base_rtt > 0 then begin
          s.round_end <- Time.add now s.rtt_latest;
          s.acked_this_rtt <- 0;
          let rtt_f = Time.to_float_s s.rtt_latest in
          let base_f = Time.to_float_s s.base_rtt in
          (* backlog in segments: cwnd * (rtt - base) / rtt *)
          let backlog = s.cwnd *. (rtt_f -. base_f) /. rtt_f in
          if s.cwnd < s.ssthresh then begin
            (* Vegas slow start: double every other RTT while the
               backlog stays small *)
            if backlog <= s.alpha then s.cwnd <- Float.min max_seg (s.cwnd *. 1.5)
            else s.ssthresh <- s.cwnd
          end
          else if backlog < s.alpha then s.cwnd <- s.cwnd +. 1.
          else if backlog > s.beta then s.cwnd <- Float.max min_seg (s.cwnd -. 1.)
        end);
    on_congestion =
      (fun ~now:_ ->
        s.ssthresh <- Float.max min_seg (s.cwnd *. 0.75);
        s.cwnd <- Float.max min_seg (s.cwnd *. 0.75));
    on_timeout =
      (fun () ->
        s.ssthresh <- Float.max min_seg (s.cwnd /. 2.);
        s.cwnd <- min_seg);
    in_slow_start = (fun () -> s.cwnd < s.ssthresh);
  }
