(** RTT estimation per RFC 6298 (the same smoothing QUIC uses):
    [srtt], [rttvar], and the retransmission/probe timeout derived
    from them. *)

type t

val create : ?initial_rto:Netsim.Sim_time.span -> unit -> t
(** [initial_rto] defaults to 1 s, used before the first sample. *)

val sample : t -> Netsim.Sim_time.span -> unit
(** Feed one RTT measurement (ns). Non-positive samples are ignored. *)

val has_sample : t -> bool
val srtt : t -> Netsim.Sim_time.span
val rttvar : t -> Netsim.Sim_time.span
val latest : t -> Netsim.Sim_time.span

val rto : t -> Netsim.Sim_time.span
(** [srtt + max(4*rttvar, 1ms)], floored at 10 ms; initial RTO before
    any sample. *)

val pto : t -> max_ack_delay:Netsim.Sim_time.span -> Netsim.Sim_time.span
(** QUIC-style probe timeout: [srtt + 4*rttvar + max_ack_delay]. *)
