(** Byte-level frame codec: QUIC-style variable-length integers and
    the TLV encoding of transport frames. This is the {e plaintext}
    that {!Wire_image} seals. *)

val put_varint : Buffer.t -> int -> unit
(** QUIC RFC 9000 §16 varints: 1/2/4/8-byte forms, 62-bit range.
    @raise Invalid_argument on negatives or values >= 2^62. *)

val get_varint : string -> pos:int -> int * int
(** [get_varint s ~pos] returns [(value, next_pos)].
    @raise Invalid_argument on truncated input. *)

val varint_size : int -> int

type frame =
  | Data of { offset : int }
  | Ack of { largest : int; ranges : (int * int) list; acked_units : int }
  | Padding of int  (** [n] bytes of padding *)

val encode_frames : seq:int -> frame list -> string
(** The plaintext body: the packet seq followed by its frames. *)

val decode_frames : string -> (int * frame list, string) result
(** Inverse; the [string] error is a human-readable parse failure. *)
