module Hmac = Sidecar_hash.Hmac
module Sha256 = Sidecar_hash.Sha256

type key = { stream : string; header : string; mac : string }

let key_gen ~seed =
  let base = Sha256.digest_string (Printf.sprintf "wire-image-key-%d" seed) in
  {
    stream = Sha256.digest_string (base ^ "stream");
    header = Sha256.digest_string (base ^ "header");
    mac = Sha256.digest_string (base ^ "mac");
  }

let header_len = 1 + 8 + 4 (* flags | conn id | packet number *)
let tag_len = 16
let min_size = header_len + tag_len

(* Keystream: SHA256(key || nonce || counter) blocks. A toy stream
   cipher — deterministic per (key, packet number), never reused
   because packet numbers are unique per connection. *)
let keystream key ~nonce ~len =
  let out = Bytes.create len in
  let rec fill off ctr =
    if off < len then begin
      let block =
        Sha256.digest_string (Printf.sprintf "%s|%d|%d" key nonce ctr)
      in
      let take = min 32 (len - off) in
      Bytes.blit_string block 0 out off take;
      fill (off + take) (ctr + 1)
    end
  in
  fill 0 0;
  Bytes.to_string out

let xor_into b off src =
  String.iteri
    (fun i c ->
      Bytes.set b (off + i) (Char.chr (Char.code (Bytes.get b (off + i)) lxor Char.code c)))
    src

(* Header protection: mask the 4 PN bytes with bytes sampled from the
   payload ciphertext (or the tag for empty payloads). *)
let pn_mask key ~sample = String.sub (Sha256.digest_string (key ^ sample)) 0 4

let payload_offset = header_len

(* 16 bytes starting right after the header; every packet has at
   least the tag there *)
let sample_of_bytes b =
  Bytes.sub_string b header_len (min 16 (Bytes.length b - header_len))

let seal_bytes key ~conn_id ~packet_number ~plaintext =
  if packet_number < 0 || packet_number > 0xFFFFFFFF then
    invalid_arg "Wire_image.seal: packet number out of 32-bit range";
  let plen = String.length plaintext in
  let wire = Bytes.create (header_len + plen + tag_len) in
  Bytes.set wire 0 '\x40';
  Bytes.set_int64_be wire 1 conn_id;
  Bytes.set_int32_be wire 9 (Int32.of_int (packet_number land 0xFFFFFFFF));
  (* seal payload *)
  Bytes.blit_string plaintext 0 wire header_len plen;
  xor_into wire header_len (keystream key.stream ~nonce:packet_number ~len:plen);
  (* tag over header (with cleartext PN) and ciphertext *)
  let tag =
    Hmac.mac_truncated ~key:key.mac ~len:tag_len
      (Bytes.sub_string wire 0 (header_len + plen))
  in
  Bytes.blit_string tag 0 wire (header_len + plen) tag_len;
  (* finally, protect the packet number *)
  let sample = sample_of_bytes wire in
  xor_into wire 9 (pn_mask key.header ~sample);
  wire

let seal key ~conn_id ~packet_number ~plaintext =
  (* the freshly sealed buffer has a single owner; no defensive copy *)
  Bytes.unsafe_to_string (seal_bytes key ~conn_id ~packet_number ~plaintext)

let open_in_place key b =
  if Bytes.length b < min_size then Error `Too_short
  else begin
    let sample = sample_of_bytes b in
    (* unprotect the packet number *)
    xor_into b 9 (pn_mask key.header ~sample);
    let pn = Int32.to_int (Bytes.get_int32_be b 9) land 0xFFFFFFFF in
    let body_len = Bytes.length b - header_len - tag_len in
    let tag = Bytes.sub_string b (header_len + body_len) tag_len in
    if
      not
        (Hmac.verify ~key:key.mac ~len:tag_len ~tag
           (Bytes.sub_string b 0 (header_len + body_len)))
    then begin
      (* leave the buffer exactly as it arrived *)
      xor_into b 9 (pn_mask key.header ~sample);
      Error `Bad_tag
    end
    else begin
      xor_into b header_len (keystream key.stream ~nonce:pn ~len:body_len);
      Ok (pn, body_len)
    end
  end

let open_ key wire =
  if String.length wire < min_size then Error `Too_short
  else begin
    let b = Bytes.of_string wire in
    match open_in_place key b with
    | Error e -> Error e
    | Ok (pn, body_len) -> Ok (pn, Bytes.sub_string b header_len body_len)
  end

let extract_id wire ~bits =
  if String.length wire < min_size then
    invalid_arg "Wire_image.extract_id: wire too short";
  (* 32 bits of the protected packet-number field plus the first
     ciphertext byte region — random-looking to anyone without the
     header key *)
  Sidecar_quack.Identifier.of_bytes (Bytes.of_string wire) ~off:9 ~bits

let conn_id_of_wire wire =
  if String.length wire < 9 then invalid_arg "Wire_image.conn_id_of_wire: too short";
  Bytes.get_int64_be (Bytes.of_string wire) 1
