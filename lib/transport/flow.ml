module Engine = Netsim.Engine
module Time = Netsim.Sim_time
module Link = Netsim.Link
module Loss = Netsim.Loss

type result = {
  completed : bool;
  fct : Time.span option;
  units : int;
  transmissions : int;
  retransmissions : int;
  congestion_events : int;
  timeouts : int;
  acks_sent : int;
  duplicates : int;
  goodput_mbps : float;
}

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>completed: %b@,fct: %s@,units: %d@,transmissions: %d@,\
     retransmissions: %d@,congestion events: %d@,timeouts: %d@,\
     acks sent: %d@,duplicates: %d@,goodput: %.2f Mbit/s@]"
    r.completed
    (match r.fct with Some f -> Format.asprintf "%a" Time.pp f | None -> "-")
    r.units r.transmissions r.retransmissions r.congestion_events r.timeouts
    r.acks_sent r.duplicates r.goodput_mbps

let json_result r =
  Obs.Json.Obj
    [
      ("completed", Obs.Json.Bool r.completed);
      ( "fct_ns",
        match r.fct with Some f -> Obs.Json.Int f | None -> Obs.Json.Null );
      ("units", Obs.Json.Int r.units);
      ("transmissions", Obs.Json.Int r.transmissions);
      ("retransmissions", Obs.Json.Int r.retransmissions);
      ("congestion_events", Obs.Json.Int r.congestion_events);
      ("timeouts", Obs.Json.Int r.timeouts);
      ("acks_sent", Obs.Json.Int r.acks_sent);
      ("duplicates", Obs.Json.Int r.duplicates);
      ("goodput_mbps", Obs.Json.Float r.goodput_mbps);
    ]

let run engine ~sender ~receiver ?(until = Time.s 300) () =
  Sender.start sender;
  Engine.run ~until engine;
  let fct = Receiver.complete_at receiver in
  let stats = Sender.stats sender in
  let units = Receiver.received_units receiver in
  let goodput_mbps =
    match fct with
    | Some f when f > 0 ->
        float_of_int (units * Sender.mss sender * 8) /. Time.to_float_s f /. 1e6
    | _ -> 0.
  in
  {
    completed = fct <> None;
    fct;
    units;
    transmissions = stats.Sender.transmissions;
    retransmissions = stats.Sender.retransmissions;
    congestion_events = stats.Sender.congestion_events;
    timeouts = stats.Sender.timeouts;
    acks_sent = Receiver.acks_sent receiver;
    duplicates = Receiver.duplicates receiver;
    goodput_mbps;
  }

let direct ?(seed = 1) ?(units = 2000) ?(mss = 1460) ?(rate_bps = 20_000_000)
    ?(delay = Time.ms 20) ?(loss = Loss.none) ?cc ?(ack_every = 2) () =
  let engine = Engine.create ~seed () in
  let fwd = Link.create engine ~name:"fwd" ~rate_bps ~delay ~loss () in
  let rev = Link.create engine ~name:"rev" ~rate_bps ~delay () in
  let cc = Option.map (fun f -> f ~mss:(mss + 40) ()) cc in
  let sender =
    Sender.create engine ~mss ?cc ~total_units:units
      ~egress:(fun p -> ignore (Link.send fwd p))
      ()
  in
  let receiver =
    Receiver.create engine ~ack_every ~total_units:units
      ~send_ack:(fun p -> ignore (Link.send rev p))
      ()
  in
  Link.set_deliver fwd (Receiver.deliver receiver);
  Link.set_deliver rev (Sender.deliver_ack sender);
  run engine ~sender ~receiver ()
