(** Transport frame payloads carried inside simulated packets.

    These model the {e plaintext} of an encrypted transport packet:
    code outside the two end hosts must not match on them (sidecars
    and proxies only see [Packet.id] and [Packet.size]). *)

type Netsim.Packet.payload +=
  | Data of { offset : int }
        (** one application unit (an MSS-sized chunk); retransmissions
            carry the same [offset] under a fresh packet [seq]/[id] *)
  | Ack of { largest : int; ranges : (int * int) list; acked_units : int }
        (** end-to-end ACK: selective ranges [(lo, hi)] of packet
            seqs, newest first, plus the receiver's count of distinct
            delivered units (for sender-side progress accounting) *)

val data_packet :
  uid:int -> flow:int -> id:int -> seq:int -> size:int -> offset:int ->
  now:Netsim.Sim_time.t -> Netsim.Packet.t

val ack_packet :
  uid:int -> flow:int -> id:int -> seq:int -> size:int -> largest:int ->
  ranges:(int * int) list -> acked_units:int -> now:Netsim.Sim_time.t ->
  Netsim.Packet.t

val ack_size : ranges:int -> int
(** Bytes of an ACK packet carrying that many ranges (40-byte base +
    8 per range). *)
