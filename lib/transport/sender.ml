module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Identifier = Sidecar_quack.Identifier

type stats = {
  mutable transmissions : int;
  mutable retransmissions : int;
  mutable congestion_events : int;
  mutable timeouts : int;
  mutable acked_units : int;
}

type inflight = {
  seq : int;
  offset : int;
  size : int;
  sent_at : Time.t;
  is_retx : bool;
}

type t = {
  engine : Engine.t;
  flow : int;
  mss : int;
  header : int;
  pkt_threshold : int;
  max_ack_delay : Time.span;
  external_cc : bool;
  cc : Cc.t;
  id_key : Identifier.key;
  on_transmit : Packet.t -> unit;
  total_units : int;
  egress : Packet.t -> unit;
  rtt : Rtt.t;
  inflight : (int, inflight) Hashtbl.t;
  unit_acked : Bytes.t;
  stats : stats;
  mutable started : bool;
  mutable available : int;  (* units eligible for first transmission *)
  mutable next_offset : int;
  mutable next_seq : int;
  mutable bytes_in_flight : int;
  mutable largest_acked : int;
  mutable recovery_until : int;  (* seqs below this do not trigger a new event *)
  mutable retx_queue : int list;  (* offsets to resend, oldest first *)
  mutable retx_queue_back : int list;
  mutable pto_count : int;
  mutable timer_gen : int;
  mutable acked_units : int;
  (* Provisionally-acked packets: confirmed past a proxy by a sidecar
     quACK, removed from the window, but the unit is not yet known
     delivered end-to-end. If no e2e ACK covers the unit before the
     deadline, it is retransmitted (§2.2's fallback). *)
  provisional : (int, int * Time.t) Hashtbl.t;  (* seq -> (offset, deadline) *)
}

let create engine ?(mss = 1460) ?(header = 40) ?(pkt_threshold = 3)
    ?(max_ack_delay = Time.ms 25) ?(external_cc = false) ?cc
    ?(id_key = Identifier.key_of_int 0xDA7A) ?(on_transmit = fun _ -> ())
    ?initially_available ?(flow = 0) ~total_units ~egress () =
  if total_units < 1 then invalid_arg "Sender.create: total_units must be >= 1";
  let cc = match cc with Some c -> c | None -> Newreno.create ~mss:(mss + header) () in
  {
    engine;
    flow;
    mss;
    header;
    pkt_threshold;
    max_ack_delay;
    external_cc;
    cc;
    id_key;
    on_transmit;
    total_units;
    egress;
    rtt = Rtt.create ();
    inflight = Hashtbl.create 1024;
    unit_acked = Bytes.make total_units '\000';
    stats =
      {
        transmissions = 0;
        retransmissions = 0;
        congestion_events = 0;
        timeouts = 0;
        acked_units = 0;
      };
    started = false;
    available = Option.value initially_available ~default:total_units;
    next_offset = 0;
    next_seq = 0;
    bytes_in_flight = 0;
    largest_acked = -1;
    recovery_until = 0;
    retx_queue = [];
    retx_queue_back = [];
    pto_count = 0;
    timer_gen = 0;
    acked_units = 0;
    provisional = Hashtbl.create 64;
  }

let wire_size t = t.mss + t.header
let cwnd t = max (t.cc.Cc.cwnd ()) (Cc.min_window ~mss:(wire_size t))
let bytes_in_flight t = t.bytes_in_flight
let stats t = t.stats
let srtt t = Rtt.srtt t.rtt
let mss t = t.mss
let total_units t = t.total_units

let all_acked t =
  t.stats.acked_units = t.total_units

let retx_pop t =
  match t.retx_queue with
  | x :: rest ->
      t.retx_queue <- rest;
      Some x
  | [] -> (
      match List.rev t.retx_queue_back with
      | [] -> None
      | x :: rest ->
          t.retx_queue <- rest;
          t.retx_queue_back <- [];
          Some x)

let retx_push t offset = t.retx_queue_back <- offset :: t.retx_queue_back

let retx_pending t = t.retx_queue <> [] || t.retx_queue_back <> []

(* Re-queue provisionally-acked units whose e2e confirmation never
   arrived. *)
let sweep_provisional t =
  if Hashtbl.length t.provisional > 0 then begin
    let now = Engine.now t.engine in
    let expired =
      Hashtbl.fold
        (fun seq (offset, deadline) acc ->
          if deadline <= now || Bytes.get t.unit_acked offset = '\001' then
            (seq, offset, deadline <= now) :: acc
          else acc)
        t.provisional []
    in
    List.iter
      (fun (seq, offset, timed_out) ->
        Hashtbl.remove t.provisional seq;
        if timed_out && Bytes.get t.unit_acked offset = '\000' then
          retx_push t offset)
      expired
  end

(* --- probe timeout ------------------------------------------------- *)

let rec arm_pto t =
  t.timer_gen <- t.timer_gen + 1;
  let gen = t.timer_gen in
  let delay =
    let base = Rtt.pto t.rtt ~max_ack_delay:t.max_ack_delay in
    base * (1 lsl min t.pto_count 6)
  in
  Engine.schedule t.engine ~delay (fun () -> on_pto t gen)

and on_pto t gen =
  if gen = t.timer_gen
     && (Hashtbl.length t.inflight > 0 || Hashtbl.length t.provisional > 0)
  then begin
    t.stats.timeouts <- t.stats.timeouts + 1;
    t.pto_count <- t.pto_count + 1;
    (* Declare the oldest in-flight packet lost and probe with its
       unit; persistent timeouts collapse the window. *)
    let oldest =
      Hashtbl.fold
        (fun _ p acc ->
          match acc with
          | None -> Some p
          | Some q -> if p.seq < q.seq then Some p else Some q)
        t.inflight None
    in
    (match oldest with
    | Some p ->
        Hashtbl.remove t.inflight p.seq;
        t.bytes_in_flight <- t.bytes_in_flight - p.size;
        if Bytes.get t.unit_acked p.offset = '\000' then retx_push t p.offset
    | None -> ());
    if t.pto_count >= 2 && not t.external_cc then t.cc.Cc.on_timeout ();
    sweep_provisional t;
    try_send t;
    if Hashtbl.length t.inflight > 0 || Hashtbl.length t.provisional > 0
       || retx_pending t
    then arm_pto t
  end

(* --- transmission -------------------------------------------------- *)

and transmit t ~offset ~is_retx =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let id = Identifier.of_counter t.id_key ~bits:32 seq in
  let size = wire_size t in
  let now = Engine.now t.engine in
  let p = Frames.data_packet ~uid:seq ~flow:t.flow ~id ~seq ~size ~offset ~now in
  Hashtbl.replace t.inflight seq { seq; offset; size; sent_at = now; is_retx };
  t.bytes_in_flight <- t.bytes_in_flight + size;
  t.stats.transmissions <- t.stats.transmissions + 1;
  if is_retx then t.stats.retransmissions <- t.stats.retransmissions + 1;
  t.on_transmit p;
  t.egress p

and try_send t =
  let size = wire_size t in
  let continue = ref true in
  while !continue do
    if t.bytes_in_flight + size > cwnd t then continue := false
    else begin
      match retx_pop t with
      | Some offset ->
          if Bytes.get t.unit_acked offset = '\000' then
            transmit t ~offset ~is_retx:true
          (* silently skip units acked since they were queued *)
      | None ->
          if t.next_offset < min t.total_units t.available then begin
            transmit t ~offset:t.next_offset ~is_retx:false;
            t.next_offset <- t.next_offset + 1
          end
          else continue := false
    end
  done

let start t =
  if not t.started then begin
    t.started <- true;
    try_send t;
    arm_pto t
  end

(* --- ACK processing ------------------------------------------------ *)

let mark_unit_acked t offset =
  if Bytes.get t.unit_acked offset = '\000' then begin
    Bytes.set t.unit_acked offset '\001';
    t.stats.acked_units <- t.stats.acked_units + 1
  end

let detect_losses t =
  (* RFC 9002-style loss detection: a packet older than the largest
     acked is lost once it is [pkt_threshold] packets behind, or once
     its age exceeds 9/8 of the RTT (the time threshold that makes
     endpoints tolerant of in-network reordering/refills). *)
  if t.largest_acked >= 0 then begin
    let threshold = t.largest_acked - t.pkt_threshold in
    let now = Engine.now t.engine in
    let age_limit =
      if Rtt.has_sample t.rtt then
        9 * max (Rtt.srtt t.rtt) (Rtt.latest t.rtt) / 8
      else max_int
    in
    let lost = ref [] in
    Hashtbl.iter
      (fun seq p ->
        if
          seq < threshold
          || (seq < t.largest_acked && Time.diff now p.sent_at > age_limit)
        then lost := p :: !lost)
      t.inflight;
    let new_event = ref false in
    List.iter
      (fun p ->
        Hashtbl.remove t.inflight p.seq;
        t.bytes_in_flight <- t.bytes_in_flight - p.size;
        if Bytes.get t.unit_acked p.offset = '\000' then retx_push t p.offset;
        if p.seq >= t.recovery_until then new_event := true)
      !lost;
    if !new_event then begin
      t.recovery_until <- t.next_seq;
      t.stats.congestion_events <- t.stats.congestion_events + 1;
      if not t.external_cc then
        t.cc.Cc.on_congestion ~now:(Engine.now t.engine)
    end
  end

let deliver_ack t (p : Packet.t) =
  match p.payload with
  | Frames.Ack { largest; ranges; acked_units } ->
      let now = Engine.now t.engine in
      if largest > t.largest_acked then t.largest_acked <- largest;
      t.acked_units <- max t.acked_units acked_units;
      let newly_acked = ref 0 in
      let rtt_sample = ref None in
      (* Iterate the (window-bounded) in-flight set rather than the
         ranges, whose oldest interval grows with the whole transfer. *)
      let covered seq = List.exists (fun (lo, hi) -> seq >= lo && seq <= hi) ranges in
      let acked =
        Hashtbl.fold (fun seq fl acc -> if covered seq then fl :: acc else acc)
          t.inflight []
      in
      List.iter
        (fun fl ->
          Hashtbl.remove t.inflight fl.seq;
          t.bytes_in_flight <- t.bytes_in_flight - fl.size;
          newly_acked := !newly_acked + fl.size;
          mark_unit_acked t fl.offset;
          if fl.seq = largest && not fl.is_retx then
            rtt_sample := Some (Time.diff now fl.sent_at))
        acked;
      (* Provisionally-released packets (freed by a sidecar quACK) are
         no longer in flight, but their units still need the e2e
         confirmation recorded here. *)
      if Hashtbl.length t.provisional > 0 then begin
        let confirmed =
          Hashtbl.fold
            (fun seq (offset, _) acc -> if covered seq then (seq, offset) :: acc else acc)
            t.provisional []
        in
        List.iter
          (fun (seq, offset) ->
            Hashtbl.remove t.provisional seq;
            mark_unit_acked t offset)
          confirmed
      end;
      (match !rtt_sample with Some s -> Rtt.sample t.rtt s | None -> ());
      sweep_provisional t;
      if !newly_acked > 0 then begin
        t.pto_count <- 0;
        if not t.external_cc then
          t.cc.Cc.on_ack ~now ~acked_bytes:!newly_acked ~rtt:!rtt_sample
      end;
      detect_losses t;
      try_send t;
      if Hashtbl.length t.inflight > 0 || Hashtbl.length t.provisional > 0
         || retx_pending t
      then arm_pto t
      else t.timer_gen <- t.timer_gen + 1 (* cancel timer *)
  | _ -> ()

let external_ack t ~acked_bytes ~rtt =
  if t.external_cc then
    t.cc.Cc.on_ack ~now:(Engine.now t.engine) ~acked_bytes ~rtt;
  try_send t

let sidecar_ack t ~seqs =
  let now = Engine.now t.engine in
  let grace = 3 * Rtt.rto t.rtt in
  let freed = ref 0 in
  List.iter
    (fun seq ->
      match Hashtbl.find_opt t.inflight seq with
      | Some fl ->
          Hashtbl.remove t.inflight fl.seq;
          t.bytes_in_flight <- t.bytes_in_flight - fl.size;
          freed := !freed + fl.size;
          Hashtbl.replace t.provisional fl.seq (fl.offset, Time.add now grace)
      | None -> ())
    seqs;
  if !freed > 0 then try_send t;
  !freed

let make_available t n =
  if n > t.available then begin
    t.available <- min n t.total_units;
    if t.started then begin
      try_send t;
      if Hashtbl.length t.inflight > 0 || retx_pending t then arm_pto t
    end
  end

let external_congestion t =
  if t.external_cc then begin
    t.stats.congestion_events <- t.stats.congestion_events + 1;
    t.cc.Cc.on_congestion ~now:(Engine.now t.engine)
  end
