module Packet = Netsim.Packet

type Packet.payload +=
  | Data of { offset : int }
  | Ack of { largest : int; ranges : (int * int) list; acked_units : int }

let data_packet ~uid ~flow ~id ~seq ~size ~offset ~now =
  Packet.make ~uid ~flow ~id ~seq ~size ~payload:(Data { offset }) ~sent_at:now ()

let ack_packet ~uid ~flow ~id ~seq ~size ~largest ~ranges ~acked_units ~now =
  Packet.make ~uid ~flow ~id ~seq ~size
    ~payload:(Ack { largest; ranges; acked_units })
    ~sent_at:now ()

let ack_size ~ranges = 40 + (8 * ranges)
