module Time = Netsim.Sim_time

type phase = Startup | Drain | Probe_bw

type state = {
  mss : int;
  mutable phase : phase;
  mutable delivered : int;  (* cumulative acked bytes *)
  (* delivery-rate samples: (window end time, bytes/s), max-filtered *)
  mutable window_start : Time.t;
  mutable window_delivered : int;
  mutable bw_samples : (Time.t * float) list;  (* newest first *)
  mutable bw : float;  (* filtered bottleneck estimate, bytes/s *)
  mutable rtprop : Time.span;
  mutable rtprop_stamp : Time.t;
  mutable full_bw : float;
  mutable full_bw_rounds : int;
  mutable cycle_index : int;
  mutable cycle_stamp : Time.t;
  mutable cwnd : int;
}

let bw_window = Time.ms 2000
let rtprop_window = Time.s 10
let startup_gain = 2.89
let cwnd_gain = 2.0
let pacing_cycle = [| 1.25; 0.75; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]

let create ?(initial_window_pkts = 10) ~mss () =
  let s =
    {
      mss;
      phase = Startup;
      delivered = 0;
      window_start = 0;
      window_delivered = 0;
      bw_samples = [];
      bw = 0.;
      rtprop = 0;
      rtprop_stamp = 0;
      full_bw = 0.;
      full_bw_rounds = 0;
      cycle_index = 0;
      cycle_stamp = 0;
      cwnd = initial_window_pkts * mss;
    }
  in
  let min_cwnd = Cc.min_window ~mss in
  let bdp_bytes gain =
    if s.bw <= 0. || s.rtprop <= 0 then float_of_int (initial_window_pkts * mss)
    else gain *. s.bw *. Time.to_float_s s.rtprop
  in
  let update_model ~now ~acked_bytes ~rtt =
    s.delivered <- s.delivered + acked_bytes;
    s.window_delivered <- s.window_delivered + acked_bytes;
    (match rtt with
    | Some r when r > 0 ->
        if s.rtprop = 0 || r < s.rtprop || Time.diff now s.rtprop_stamp > rtprop_window
        then begin
          s.rtprop <- r;
          s.rtprop_stamp <- now
        end
    | _ -> ());
    (* close a sampling window once it spans at least one rtprop *)
    let span = Time.diff now s.window_start in
    let min_span = max (Time.ms 5) s.rtprop in
    if span >= min_span then begin
      let rate = float_of_int s.window_delivered /. Time.to_float_s span in
      s.bw_samples <- (now, rate) :: s.bw_samples;
      s.window_start <- now;
      s.window_delivered <- 0;
      (* expire and max-filter *)
      s.bw_samples <-
        List.filter (fun (t, _) -> Time.diff now t <= bw_window) s.bw_samples;
      s.bw <- List.fold_left (fun acc (_, r) -> Float.max acc r) 0. s.bw_samples;
      (* startup plateau detection: < 25% growth for 3 windows *)
      if s.phase = Startup then begin
        if s.bw > s.full_bw *. 1.25 then begin
          s.full_bw <- s.bw;
          s.full_bw_rounds <- 0
        end
        else begin
          s.full_bw_rounds <- s.full_bw_rounds + 1;
          if s.full_bw_rounds >= 3 then begin
            s.phase <- Drain;
            s.cycle_stamp <- now
          end
        end
      end
      else if s.phase = Drain then begin
        (* leave drain once the queue estimate is gone: inflight is the
           caller's business, so approximate with one rtprop in drain *)
        if Time.diff now s.cycle_stamp >= s.rtprop then begin
          s.phase <- Probe_bw;
          s.cycle_stamp <- now;
          s.cycle_index <- 0
        end
      end
      else if s.rtprop > 0 && Time.diff now s.cycle_stamp >= s.rtprop then begin
        s.cycle_index <- (s.cycle_index + 1) mod Array.length pacing_cycle;
        s.cycle_stamp <- now
      end
    end;
    let gain =
      match s.phase with
      | Startup -> startup_gain
      | Drain -> 1.0 /. startup_gain
      | Probe_bw -> cwnd_gain *. pacing_cycle.(s.cycle_index)
    in
    s.cwnd <- max min_cwnd (int_of_float (bdp_bytes gain))
  in
  {
    Cc.name = "bbr-lite";
    cwnd = (fun () -> s.cwnd);
    on_ack = (fun ~now ~acked_bytes ~rtt -> update_model ~now ~acked_bytes ~rtt);
    on_congestion =
      (fun ~now:_ ->
        (* BBR is not loss-driven; cap mildly to avoid runaway when the
           model is stale *)
        ());
    on_timeout =
      (fun () ->
        s.bw_samples <- [];
        s.bw <- 0.;
        s.full_bw <- 0.;
        s.full_bw_rounds <- 0;
        s.phase <- Startup;
        s.cwnd <- min_cwnd);
    in_slow_start = (fun () -> s.phase = Startup);
  }
