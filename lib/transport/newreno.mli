(** NewReno congestion control (RFC 6582 shape, byte-counted):
    exponential slow start, additive increase of one MSS per window
    per RTT, multiplicative decrease to half on a congestion event. *)

val create : ?initial_window_pkts:int -> mss:int -> unit -> Cc.t
(** [initial_window_pkts] defaults to 10 (RFC 6928). *)
