(** TCP Vegas congestion control — the classic delay-based scheme.

    Vegas compares actual and expected throughput: the backlog estimate
    [cwnd * (rtt - base_rtt) / rtt] counts packets sitting in queues.
    Below [alpha] packets of backlog it grows the window by one MSS per
    RTT; above [beta] it shrinks by one. It finds low-delay operating
    points but gets out-competed by loss-based flows — which is why it
    is here: a delay-sensitive controller behind a deep-buffering proxy
    is the sharpest bufferbloat probe in the ablations. *)

val create :
  ?initial_window_pkts:int -> ?alpha:int -> ?beta:int -> mss:int -> unit -> Cc.t
(** Defaults: alpha 2, beta 4 (segments of backlog). *)
