(** The "paranoid" wire image: what a packet actually looks like on
    the wire, and why a sidecar can only ever see pseudo-random bits.

    Layout (QUIC-short-header-shaped):

    {v
    +------+----------------+--------------+------------------+-----+
    |flags | 8-byte conn id | 4-byte PN    | sealed payload   | tag |
    |(1 B) | (cleartext)    | (protected)  | (keystream XOR)  |16 B |
    +------+----------------+--------------+------------------+-----+
    v}

    The packet number is header-protected: XORed with a mask derived
    from a sample of the payload ciphertext, exactly the mechanism
    that makes QUIC packet numbers unreadable (and unforgeable) for
    middleboxes. The payload is sealed with a toy AEAD — a
    PRF keystream XOR plus a truncated HMAC-SHA256 tag over the header
    and ciphertext. {b Toy means toy}: this models the {e shape} and
    {e opacity} of the wire image for simulation purposes and must
    never protect real data.

    The sidecar identifier is {!extract_id}: 32 bits straddling the
    protected packet-number field — different for every transmission
    because the PN and its mask change, which is precisely the
    property the quACK needs (§3.2). *)

type key

val key_gen : seed:int -> key
(** Derive a connection key (both endpoints share it out of band —
    standing in for the TLS handshake). *)

val seal :
  key -> conn_id:int64 -> packet_number:int -> plaintext:string -> string
(** Produce the wire bytes. @raise Invalid_argument when
    [packet_number] exceeds 32 bits. *)

val open_ : key -> string -> (int * string, [ `Too_short | `Bad_tag ]) result
(** [open_ key wire] authenticates and decrypts:
    [(packet_number, plaintext)]. Only the endpoints can do this. *)

val seal_bytes :
  key -> conn_id:int64 -> packet_number:int -> plaintext:string -> Bytes.t
(** {!seal} without the final string conversion: the same wire bytes
    in a caller-owned buffer, for datapaths that keep packets as
    [Bytes] views end to end (lib/fastpath). *)

val open_in_place :
  key -> Bytes.t -> (int * int, [ `Too_short | `Bad_tag ]) result
(** Zero-copy {!open_}: authenticates, then unprotects the packet
    number and decrypts the payload {e in place}. [Ok (pn, body_len)]
    means the plaintext now occupies [header_len .. header_len +
    body_len) of the buffer (see {!payload_offset}); no intermediate
    buffer is rebuilt. On [Error `Bad_tag] the buffer is restored
    bit-for-bit; on [Error `Too_short] it was never touched. *)

val payload_offset : int
(** Byte offset of the (sealed or, after {!open_in_place}, cleartext)
    payload within the wire — the header length. *)

val extract_id : string -> bits:int -> int
(** What the sidecar does: read [bits] pseudo-random bits from the
    protected region of the header. Requires no key. @raise
    Invalid_argument when the wire is shorter than a minimal packet. *)

val min_size : int
(** Header + tag bytes for an empty payload. *)

val conn_id_of_wire : string -> int64
(** The cleartext connection id — the "flow" a middlebox may route
    by. @raise Invalid_argument when too short. *)
