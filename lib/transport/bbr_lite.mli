(** A BBR-flavoured model-based congestion controller.

    Instead of reacting to loss, it builds a model of the path — a
    windowed-max estimate of delivery rate (bottleneck bandwidth) and
    a windowed-min RTT — and sets [cwnd = gain * BDP]. Phases follow
    BBR v1's shape: STARTUP (gain 2.89 until the rate stops growing),
    DRAIN, then PROBE_BW cycling pacing gains.

    Simplifications vs real BBR (documented, deliberate): delivery
    rate is sampled from cumulative acked bytes over wall-clock
    windows rather than per-packet delivery-rate samples, and there is
    no pacing (the simulator's sender is purely window-clocked), so
    PROBE_RTT is approximated by the min-filter's expiry alone. *)

val create : ?initial_window_pkts:int -> mss:int -> unit -> Cc.t
