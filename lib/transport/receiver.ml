module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Identifier = Sidecar_quack.Identifier

type t = {
  engine : Engine.t;
  flow : int;
  total_units : int;
  send_ack : Packet.t -> unit;
  on_data : Packet.t -> unit;
  max_ack_delay : Time.span;
  max_ranges : int;
  id_key : Identifier.key;
  units : Bytes.t;  (* one byte per unit: 0 = pending, 1 = delivered *)
  mutable ack_every : int;
  mutable received_units : int;
  mutable duplicates : int;
  mutable complete_at : Time.t option;
  mutable ranges : (int * int) list;  (* received seq intervals, desc *)
  mutable largest : int;
  mutable since_ack : int;
  mutable delayed_ack_armed : bool;
  mutable ack_timer_gen : int;
  mutable acks_sent : int;
  mutable data_seen : int;
  mutable next_ack_seq : int;  (* seq space for ACK packets themselves *)
}

let create engine ?(ack_every = 2) ?(max_ack_delay = Time.ms 25) ?(max_ranges = 16)
    ?(id_key = Identifier.key_of_int 0xACC) ?(on_data = fun _ -> ()) ?(flow = 0)
    ~total_units ~send_ack () =
  if ack_every < 1 then invalid_arg "Receiver.create: ack_every must be >= 1";
  if total_units < 1 then invalid_arg "Receiver.create: total_units must be >= 1";
  {
    engine;
    flow;
    total_units;
    send_ack;
    on_data;
    max_ack_delay;
    max_ranges;
    id_key;
    units = Bytes.make total_units '\000';
    ack_every;
    received_units = 0;
    duplicates = 0;
    complete_at = None;
    ranges = [];
    largest = -1;
    since_ack = 0;
    delayed_ack_armed = false;
    ack_timer_gen = 0;
    acks_sent = 0;
    data_seen = 0;
    next_ack_seq = 0;
  }

(* Insert seq into the descending, disjoint interval list. *)
let rec insert_seq seq = function
  | [] -> [ (seq, seq) ]
  | (lo, hi) :: rest as all ->
      if seq > hi + 1 then (seq, seq) :: all
      else if seq = hi + 1 then merge_left (lo, seq) rest
      else if seq >= lo then all (* duplicate *)
      else if seq = lo - 1 then merge_right (seq, hi) rest
      else (lo, hi) :: insert_seq seq rest

and merge_left (lo, hi) rest = (lo, hi) :: rest

and merge_right (lo, hi) = function
  | (lo2, hi2) :: rest when hi2 + 1 = lo -> (lo2, hi) :: rest
  | rest -> (lo, hi) :: rest

let emit_ack t =
  t.since_ack <- 0;
  t.delayed_ack_armed <- false;
  t.ack_timer_gen <- t.ack_timer_gen + 1;
  if t.largest >= 0 then begin
    let ranges =
      let rec take n = function
        | [] -> []
        | r :: rest -> if n = 0 then [] else r :: take (n - 1) rest
      in
      take t.max_ranges t.ranges
    in
    let size = Frames.ack_size ~ranges:(List.length ranges) in
    let seq = t.next_ack_seq in
    t.next_ack_seq <- seq + 1;
    let id = Identifier.of_counter t.id_key ~bits:32 seq in
    t.acks_sent <- t.acks_sent + 1;
    t.send_ack
      (Frames.ack_packet ~uid:(-1) ~flow:t.flow ~id ~seq ~size ~largest:t.largest
         ~ranges ~acked_units:t.received_units ~now:(Engine.now t.engine))
  end

let arm_delayed_ack t =
  if not t.delayed_ack_armed then begin
    t.delayed_ack_armed <- true;
    t.ack_timer_gen <- t.ack_timer_gen + 1;
    let gen = t.ack_timer_gen in
    Engine.schedule t.engine ~delay:t.max_ack_delay (fun () ->
        if t.delayed_ack_armed && gen = t.ack_timer_gen then emit_ack t)
  end

let deliver t (p : Packet.t) =
  match p.payload with
  | Frames.Data { offset } ->
      t.data_seen <- t.data_seen + 1;
      t.on_data p;
      t.ranges <- insert_seq p.seq t.ranges;
      if p.seq > t.largest then t.largest <- p.seq;
      if offset >= 0 && offset < t.total_units then begin
        if Bytes.get t.units offset = '\000' then begin
          Bytes.set t.units offset '\001';
          t.received_units <- t.received_units + 1;
          if t.received_units = t.total_units && t.complete_at = None then
            t.complete_at <- Some (Engine.now t.engine)
        end
        else t.duplicates <- t.duplicates + 1
      end;
      t.since_ack <- t.since_ack + 1;
      if t.since_ack >= t.ack_every then emit_ack t else arm_delayed_ack t
  | _ -> () (* non-data packets are not this connection's concern *)

let set_ack_every t k =
  if k < 1 then invalid_arg "Receiver.set_ack_every: must be >= 1";
  t.ack_every <- k

let received_units t = t.received_units
let duplicates t = t.duplicates
let complete_at t = t.complete_at
let acks_sent t = t.acks_sent
let data_packets_seen t = t.data_seen
