(** CUBIC congestion control (RFC 9438 shape): the window grows as a
    cubic function of time since the last congestion event, with fast
    convergence and a TCP-friendly (Reno) floor region. *)

val create : ?initial_window_pkts:int -> mss:int -> unit -> Cc.t
