module Time = Netsim.Sim_time

(* Standard constants: C = 0.4 (segments/s^3), beta = 0.7. State is
   kept in float segments; the exposed cwnd is bytes. *)
let c_const = 0.4
let beta = 0.7

type state = {
  mss : int;
  mutable cwnd_seg : float;
  mutable ssthresh_seg : float;
  mutable w_max : float;  (* window before the last reduction *)
  mutable k : float;  (* time to regrow to w_max, seconds *)
  mutable epoch_start : Time.t option;
  mutable reno_cwnd : float;  (* TCP-friendly estimate *)
}

let create ?(initial_window_pkts = 10) ~mss () =
  let s =
    {
      mss;
      cwnd_seg = float_of_int initial_window_pkts;
      ssthresh_seg = infinity;
      w_max = 0.;
      k = 0.;
      epoch_start = None;
      reno_cwnd = float_of_int initial_window_pkts;
    }
  in
  let min_seg = 2. in
  let cwnd_bytes () = int_of_float (s.cwnd_seg *. float_of_int s.mss) in
  let cubic_window at =
    (* W_cubic(t) = C (t - K)^3 + W_max *)
    let t = at -. s.k in
    (c_const *. t *. t *. t) +. s.w_max
  in
  {
    Cc.name = "cubic";
    cwnd = cwnd_bytes;
    on_ack =
      (fun ~now ~acked_bytes ~rtt ->
        let acked_seg = float_of_int acked_bytes /. float_of_int s.mss in
        if s.cwnd_seg < s.ssthresh_seg then
          (* slow start *)
          s.cwnd_seg <- s.cwnd_seg +. acked_seg
        else begin
          let epoch =
            match s.epoch_start with
            | Some e -> e
            | None ->
                s.epoch_start <- Some now;
                (* start an epoch from the current window *)
                if s.w_max < s.cwnd_seg then begin
                  s.w_max <- s.cwnd_seg;
                  s.k <- 0.
                end
                else
                  s.k <- Float.cbrt ((s.w_max -. s.cwnd_seg) /. c_const);
                now
          in
          let t = Time.to_float_s (Time.diff now epoch) in
          let rtt_s =
            match rtt with Some r when r > 0 -> Time.to_float_s r | _ -> 0.05
          in
          let target = cubic_window (t +. rtt_s) in
          (* TCP-friendly region *)
          s.reno_cwnd <-
            s.reno_cwnd +. (3. *. (1. -. beta) /. (1. +. beta) *. acked_seg /. s.reno_cwnd);
          let target = Float.max target s.reno_cwnd in
          if target > s.cwnd_seg then
            s.cwnd_seg <- s.cwnd_seg +. ((target -. s.cwnd_seg) /. s.cwnd_seg *. acked_seg)
          else s.cwnd_seg <- s.cwnd_seg +. (0.01 *. acked_seg)
        end);
    on_congestion =
      (fun ~now:_ ->
        s.epoch_start <- None;
        (* fast convergence *)
        s.w_max <-
          (if s.cwnd_seg < s.w_max then s.cwnd_seg *. (1. +. beta) /. 2.
           else s.cwnd_seg);
        s.cwnd_seg <- Float.max min_seg (s.cwnd_seg *. beta);
        s.ssthresh_seg <- s.cwnd_seg;
        s.reno_cwnd <- s.cwnd_seg);
    on_timeout =
      (fun () ->
        s.epoch_start <- None;
        s.w_max <- s.cwnd_seg;
        s.ssthresh_seg <- Float.max min_seg (s.cwnd_seg *. beta);
        s.cwnd_seg <- min_seg;
        s.reno_cwnd <- min_seg);
    in_slow_start = (fun () -> s.cwnd_seg < s.ssthresh_seg);
  }
