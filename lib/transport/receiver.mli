(** The receiving end host of a transport connection.

    Tracks received packet seqs (as merged intervals) and distinct
    application units; generates selective ACKs every [ack_every]
    data packets or after [max_ack_delay], whichever first. The
    ACK-frequency knob models QUIC's ack-frequency extension, which
    the ACK-reduction sidecar protocol turns {e down} (§2.2). *)

type t

val create :
  Netsim.Engine.t ->
  ?ack_every:int ->
  ?max_ack_delay:Netsim.Sim_time.span ->
  ?max_ranges:int ->
  ?id_key:Sidecar_quack.Identifier.key ->
  ?on_data:(Netsim.Packet.t -> unit) ->
  ?flow:int ->
  total_units:int ->
  send_ack:(Netsim.Packet.t -> unit) ->
  unit ->
  t
(** Defaults: ACK every 2, 25 ms max delay, 16 SACK ranges.
    [on_data] is the local sidecar tap: called for every arriving data
    packet (the client sidecar of §2.1 lives there). *)

val deliver : t -> Netsim.Packet.t -> unit
(** Entry point wired to the last downstream link. *)

val set_ack_every : t -> int -> unit
(** The ACK-frequency extension: change how often e2e ACKs are sent. *)

val received_units : t -> int
val duplicates : t -> int
(** Data packets whose unit had already been delivered. *)

val complete_at : t -> Netsim.Sim_time.t option
(** Time the last distinct unit arrived, once all have. *)

val acks_sent : t -> int
val data_packets_seen : t -> int
