(** Congestion-controller interface, as a record of closures so
    controllers are values (easy to swap per flow, easy to drive from a
    sidecar instead of from end-to-end ACKs — §2.1).

    Units: bytes for windows, nanoseconds for time. Controllers are
    told about acked bytes, congestion events (at most one per round
    trip — the caller de-duplicates), and persistent timeouts. *)

type t = {
  name : string;
  cwnd : unit -> int;  (** current congestion window, bytes *)
  on_ack :
    now:Netsim.Sim_time.t -> acked_bytes:int -> rtt:Netsim.Sim_time.span option -> unit;
  on_congestion : now:Netsim.Sim_time.t -> unit;
      (** one loss {e event} (not one lost packet) *)
  on_timeout : unit -> unit;  (** persistent timeout: collapse *)
  in_slow_start : unit -> bool;
}

val fixed : cwnd_bytes:int -> t
(** A constant window — the "dumb" baseline and a useful test double. *)

val min_window : mss:int -> int
(** 2 * mss, the floor every controller respects. *)
