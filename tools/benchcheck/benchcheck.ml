(* benchcheck: validate the repo's machine-readable outputs.

   Usage: benchcheck FILE.json [FILE.json ...]

   Each file must carry a recognised "schema" tag:

   "sidecar-bench-1" (the bench harness):
     { "schema": "sidecar-bench-1",
       "rows": [ { "section": <string>, ...fields }, ... ] }
   where every row has a string "section", at least one numeric field,
   and no null values — the bench writes nan/inf as null, so a null
   here means a measurement silently failed and the run must not be
   archived as data.

   "sidecar-lint-1" (sidelint --format json):
     { "schema": "sidecar-lint-1",
       "files_checked": <int>, "violation_count": <int>,
       "violations": [ { "file": <string>, "line": <int>, "col": <int>,
                         "rule": <string>, "message": <string> }, ... ] }
   where the count must agree with the list and a zero "files_checked"
   means the lint walked nothing (a misconfigured CI path, not a clean
   tree).

   Exits non-zero (listing every problem) on any violation; prints a
   one-line summary per valid file. *)

let errors = ref 0

let err path fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "benchcheck: %s: %s\n" path msg)
    fmt

let check_row path i = function
  | Obs.Json.Obj fields ->
      (match List.assoc_opt "section" fields with
      | Some (Obs.Json.String _) -> ()
      | Some _ -> err path "row %d: \"section\" is not a string" i
      | None -> err path "row %d: missing \"section\"" i);
      let numeric = ref 0 in
      List.iter
        (fun (name, v) ->
          match v with
          | Obs.Json.Int _ -> incr numeric
          | Obs.Json.Float f ->
              if Float.is_finite f then incr numeric
              else err path "row %d: field %S is not finite" i name
          | Obs.Json.Null ->
              err path
                "row %d: field %S is null (a measurement produced nan/inf)" i
                name
          | Obs.Json.String _ | Obs.Json.Bool _ -> ()
          | Obs.Json.List _ | Obs.Json.Obj _ ->
              err path "row %d: field %S is nested (rows must be flat)" i name)
        fields;
      if !numeric = 0 then err path "row %d: no numeric field" i;
      (* A merged parallel-runtime row must carry the full speedup
         record, and its job/replication counts must be sane — a bench
         that lost a field here measured nothing. *)
      let section = List.assoc_opt "section" fields in
      let num name ~section =
        match List.assoc_opt name fields with
        | Some (Obs.Json.Int n) -> Some (float_of_int n)
        | Some (Obs.Json.Float f) when Float.is_finite f -> Some f
        | Some _ | None ->
            err path "row %d: %s field %S missing or non-numeric" i section name;
            None
      in
      let enum name ~section allowed =
        match List.assoc_opt name fields with
        | Some (Obs.Json.String s) when List.mem s allowed -> ()
        | Some _ | None ->
            err path "row %d: %s field %S missing or not one of {%s}" i section
              name
              (String.concat ", " allowed)
      in
      if section = Some (Obs.Json.String "runtime_parallel") then begin
        let check_pos name =
          match num name ~section:"runtime_parallel" with
          | Some v when v <= 0. ->
              err path "row %d: runtime_parallel field %S must be positive" i
                name
          | Some _ | None -> ()
        in
        List.iter check_pos
          [ "jobs"; "replications"; "flows_per_replication"; "seq_wall_s";
            "par_wall_s"; "speedup" ]
      end;
      (* The datapath differential rows: every field present and
         non-negative (the deterministic bench zeroes wall-clock rates,
         so positivity is too strong), datapaths from the known set.
         The ref/flat checksum agreement is checked across rows below. *)
      if section = Some (Obs.Json.String "runtime_datapath") then begin
        enum "datapath" ~section:"runtime_datapath" [ "ref"; "flat" ];
        let check_nonneg name =
          match num name ~section:"runtime_datapath" with
          | Some v when v < 0. ->
              err path "row %d: runtime_datapath field %S is negative" i name
          | Some _ | None -> ()
        in
        List.iter check_nonneg
          [ "flows"; "pkts_per_sec"; "proxy_us_per_pkt"; "alloc_words_per_pkt";
            "quacks"; "checksum" ]
      end;
      (* The sharded-runtime rows: admission-control and churn columns
         are required (a row without occupancy_peak or
         eviction_churn_per_epoch recorded no pressure evidence), and
         every simulation-derived column must be non-negative. The
         shards=1 vs shards=N invariance is checked across rows
         below. *)
      if section = Some (Obs.Json.String "runtime_shard") then begin
        enum "scenario" ~section:"runtime_shard" [ "sustained"; "churn" ];
        enum "policy" ~section:"runtime_shard" [ "lru"; "idle" ];
        let check_nonneg name =
          match num name ~section:"runtime_shard" with
          | Some v when v < 0. ->
              err path "row %d: runtime_shard field %S is negative" i name
          | Some _ | None -> ()
        in
        List.iter check_nonneg
          [ "shards"; "partitions"; "capacity"; "flows"; "arrivals_per_epoch";
            "epochs"; "packets"; "peak_concurrent"; "occupancy_peak";
            "admitted"; "evicted"; "denied"; "completed"; "quacks";
            "eviction_churn_per_epoch"; "checksum"; "wall_s" ];
        match num "shards" ~section:"runtime_shard" with
        | Some v when v < 1. ->
            err path "row %d: runtime_shard field \"shards\" must be >= 1" i
        | Some _ | None -> ()
      end;
      if section = Some (Obs.Json.String "runtime_field") then begin
        enum "datapath" ~section:"runtime_field" [ "ref"; "flat" ];
        enum "field" ~section:"runtime_field" [ "modular"; "log" ];
        let check_nonneg name =
          match num name ~section:"runtime_field" with
          | Some v when v < 0. ->
              err path "row %d: runtime_field field %S is negative" i name
          | Some _ | None -> ()
        in
        List.iter check_nonneg
          [ "bits"; "pkts_per_sec"; "proxy_us_per_pkt"; "checksum" ]
      end;
      if section = Some (Obs.Json.String "runtime_handover") then begin
        let check_nonneg names =
          List.iter
            (fun name ->
              match num name ~section:"runtime_handover" with
              | Some v when v < 0. ->
                  err path "row %d: runtime_handover field %S is negative" i
                    name
              | Some _ | None -> ())
            names
        in
        check_nonneg
          [ "flows"; "completed"; "fct_p50_s"; "fct_p95_s"; "fct_p99_s";
            "fct_mean_s"; "srv_resyncs"; "retransmissions"; "timeouts";
            "delivered_bytes" ];
        (match (num "completed" ~section:"runtime_handover",
                num "flows" ~section:"runtime_handover") with
        | Some c, Some f when c > f ->
            err path "row %d: runtime_handover completed > flows" i
        | _ -> ());
        match List.assoc_opt "scenario" fields with
        | Some (Obs.Json.String "handover") ->
            enum "arm" ~section:"runtime_handover"
              [ "baseline"; "resync"; "transfer" ];
            enum "strategy" ~section:"runtime_handover"
              [ "resync"; "transfer" ];
            check_nonneg
              [ "migrations"; "transfers"; "transfer_bytes"; "install_merges";
                "spurious_retx" ]
        | Some (Obs.Json.String "multipath") ->
            enum "arm" ~section:"runtime_handover"
              [ "split"; "single_path" ];
            check_nonneg
              [ "path1_pkts"; "path2_pkts"; "folded_decodes"; "duplicates" ]
        | _ ->
            err path
              "row %d: runtime_handover field \"scenario\" missing or not one \
               of {handover, multipath}"
              i
      end;
      if section = Some (Obs.Json.String "runtime_adversary") then begin
        let check_nonneg names =
          List.iter
            (fun name ->
              match num name ~section:"runtime_adversary" with
              | Some v when v < 0. ->
                  err path "row %d: runtime_adversary field %S is negative" i
                    name
              | Some _ | None -> ())
            names
        in
        match List.assoc_opt "scenario" fields with
        | Some (Obs.Json.String "adversary") ->
            enum "arm" ~section:"runtime_adversary"
              [ "unauth_rate0"; "unauth_rate_half"; "unauth"; "auth" ];
            check_nonneg
              [ "attack_rate"; "flows"; "completed"; "wedged"; "fct_p50_s";
                "fct_p95_s"; "fct_p99_s"; "fct_mean_s"; "quacks_sealed";
                "auth_bytes_overhead"; "attacks_spoofed"; "attacks_replayed";
                "attacks_truncated"; "attacks_bitflipped"; "attacker_admitted";
                "attacker_resyncs"; "auth_rejected"; "replays_dropped";
                "malformed"; "srv_resyncs"; "retransmissions"; "timeouts";
                "spurious_retx"; "delivered_bytes" ];
            (match (num "completed" ~section:"runtime_adversary",
                    num "flows" ~section:"runtime_adversary") with
            | Some c, Some f when c > f ->
                err path "row %d: runtime_adversary completed > flows" i
            | _ -> ());
            (match (num "auth_bytes_overhead" ~section:"runtime_adversary",
                    num "quacks_sealed" ~section:"runtime_adversary") with
            | Some o, Some q when o <> 16. *. q ->
                err path
                  "row %d: runtime_adversary auth_bytes_overhead (%g) is not \
                   16 B per sealed quACK (%g)"
                  i o q
            | _ -> ())
        | Some (Obs.Json.String "leakage") ->
            enum "arm" ~section:"runtime_adversary" [ "unshaped"; "shaped" ];
            check_nonneg
              [ "flows"; "completed"; "fct_p50_s"; "fct_p95_s"; "fct_p99_s";
                "fct_mean_s"; "quacks_on_wire"; "quack_bytes_on_wire";
                "dummy_quacks"; "replays_dropped"; "observer_accuracy";
                "srv_resyncs"; "retransmissions"; "timeouts" ];
            (match num "observer_accuracy" ~section:"runtime_adversary" with
            | Some a when a > 1. ->
                err path "row %d: runtime_adversary observer_accuracy > 1" i
            | _ -> ());
            (* every shaped dummy is a byte-identical re-emission, so
               the server's replay guard must absorb exactly that many *)
            (match (num "dummy_quacks" ~section:"runtime_adversary",
                    num "replays_dropped" ~section:"runtime_adversary") with
            | Some d, Some r when d <> r ->
                err path
                  "row %d: runtime_adversary dummy_quacks (%g) <> \
                   replays_dropped (%g)"
                  i d r
            | _ -> ())
        | Some (Obs.Json.String "hmac") ->
            check_nonneg [ "tag_bytes"; "sign_us"; "verify_us" ];
            (match num "tag_bytes" ~section:"runtime_adversary" with
            | Some t when t <> 16. ->
                err path "row %d: runtime_adversary tag_bytes is not 16" i
            | _ -> ())
        | _ ->
            err path
              "row %d: runtime_adversary field \"scenario\" missing or not \
               one of {adversary, leakage, hmac}"
              i
      end
  | _ -> err path "row %d: not an object" i

(* Cross-row: each runtime_datapath flow count must carry one ref and
   one flat row, and the two fixed-length checksum runs must agree —
   a divergence here means the fast path processed different packets
   than the authoritative one and the speedup column is fiction. *)
let check_datapath_pairs path rows =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun row ->
      match row with
      | Obs.Json.Obj fields
        when List.assoc_opt "section" fields
             = Some (Obs.Json.String "runtime_datapath") -> (
          match
            ( List.assoc_opt "flows" fields,
              List.assoc_opt "datapath" fields,
              List.assoc_opt "checksum" fields )
          with
          | Some (Obs.Json.Int flows), Some (Obs.Json.String dp),
            Some (Obs.Json.Int cks) ->
              Hashtbl.add tbl flows (dp, cks)
          | _ -> () (* field-level errors already reported *))
      | _ -> ())
    rows;
  let seen = Hashtbl.create 8 in
  Hashtbl.iter
    (fun flows _ ->
      if not (Hashtbl.mem seen flows) then begin
        Hashtbl.add seen flows ();
        let arms = Hashtbl.find_all tbl flows in
        match
          ( List.filter (fun (dp, _) -> dp = "ref") arms,
            List.filter (fun (dp, _) -> dp = "flat") arms )
        with
        | [ (_, r) ], [ (_, f) ] ->
            if r <> f then
              err path
                "runtime_datapath: ref/flat checksums diverge at %d flows" flows
        | rs, fs ->
            err path
              "runtime_datapath: %d flows has %d ref / %d flat rows (want 1/1)"
              flows (List.length rs) (List.length fs)
      end)
    tbl

(* Cross-row: each runtime_shard scenario must carry a shards=1 row
   (the invariance baseline) and at least one shards>1 row, and every
   simulation-derived column must agree across the group — a scenario
   missing the pairing proves nothing about shard-count invariance,
   and a disagreeing column means a shard boundary leaked into a
   flow-table decision. *)
let check_shard_pairs path rows =
  let invariant_fields =
    [ "partitions"; "capacity"; "flows"; "arrivals_per_epoch"; "epochs";
      "packets"; "peak_concurrent"; "occupancy_peak"; "admitted"; "evicted";
      "denied"; "completed"; "quacks"; "checksum" ]
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun row ->
      match row with
      | Obs.Json.Obj fields
        when List.assoc_opt "section" fields
             = Some (Obs.Json.String "runtime_shard") -> (
          match
            (List.assoc_opt "scenario" fields, List.assoc_opt "shards" fields)
          with
          | Some (Obs.Json.String sc), Some (Obs.Json.Int shards) ->
              let key =
                List.map (fun f -> List.assoc_opt f fields) invariant_fields
              in
              Hashtbl.add tbl sc (shards, key)
          | _ -> () (* field-level errors already reported *))
      | _ -> ())
    rows;
  let seen = Hashtbl.create 8 in
  Hashtbl.iter
    (fun sc _ ->
      if not (Hashtbl.mem seen sc) then begin
        Hashtbl.add seen sc ();
        let runs = Hashtbl.find_all tbl sc in
        let base = List.filter (fun (s, _) -> s = 1) runs in
        let multi = List.filter (fun (s, _) -> s > 1) runs in
        match (base, multi) with
        | [ (_, bkey) ], _ :: _ ->
            List.iter
              (fun (shards, key) ->
                if key <> bkey then
                  err path
                    "runtime_shard: scenario %S diverges from shards=1 at \
                     shards=%d"
                    sc shards)
              multi
        | bs, ms ->
            err path
              "runtime_shard: scenario %S has %d shards=1 / %d shards>1 rows \
               (want exactly 1 baseline and at least 1 comparison)"
              sc (List.length bs) (List.length ms)
      end)
    tbl

(* Cross-row: the handover family must carry all three arms exactly
   once and the multipath family both of its arms; and the relations
   the families exist to demonstrate must actually hold in the data —
   the transfer arm's state continuity costs no more server resyncs
   than the resync arm's restart, only the transfer arm pays control
   bytes, only migrated arms migrate, and the split arm's folded
   decode must have fired (a split run that never folds proved
   nothing about Psum.merge). *)
let check_handover_arms path rows =
  let handover = Hashtbl.create 4 and multipath = Hashtbl.create 4 in
  List.iter
    (fun row ->
      match row with
      | Obs.Json.Obj fields
        when List.assoc_opt "section" fields
             = Some (Obs.Json.String "runtime_handover") -> (
          match
            (List.assoc_opt "scenario" fields, List.assoc_opt "arm" fields)
          with
          | Some (Obs.Json.String "handover"), Some (Obs.Json.String arm) ->
              Hashtbl.add handover arm fields
          | Some (Obs.Json.String "multipath"), Some (Obs.Json.String arm) ->
              Hashtbl.add multipath arm fields
          | _ -> () (* field-level errors already reported *))
      | _ -> ())
    rows;
  if Hashtbl.length handover = 0 && Hashtbl.length multipath = 0 then ()
  else begin
    let get tbl arm =
      match Hashtbl.find_all tbl arm with
      | [ fields ] -> Some fields
      | l ->
          err path "runtime_handover: %d %S rows (want exactly 1)"
            (List.length l) arm;
          None
    in
    let int_field fields name =
      match List.assoc_opt name fields with
      | Some (Obs.Json.Int v) -> Some v
      | _ -> None
    in
    (match (get handover "baseline", get handover "resync",
            get handover "transfer") with
    | Some base, Some resync, Some transfer ->
        (match int_field base "migrations" with
        | Some 0 -> ()
        | Some m ->
            err path "runtime_handover: baseline arm migrated %d flows" m
        | None -> ());
        (match (int_field resync "transfers", int_field transfer "transfers",
                int_field transfer "migrations") with
        | Some 0, Some t, Some m when t = m && m > 0 -> ()
        | Some rt, Some t, Some m ->
            err path
              "runtime_handover: transfers resync=%d (want 0), transfer=%d \
               (want = migrations %d > 0)"
              rt t m
        | _ -> ());
        (match (int_field transfer "srv_resyncs",
                int_field resync "srv_resyncs") with
        | Some t, Some r when t > r ->
            err path
              "runtime_handover: transfer arm resyncs (%d) exceed resync \
               arm's (%d) — snapshot continuity is not helping"
              t r
        | _ -> ());
        (match (int_field transfer "install_merges",
                int_field transfer "transfers") with
        | Some im, Some t when im > t ->
            err path
              "runtime_handover: install_merges (%d) exceed transfers (%d)"
              im t
        | _ -> ())
    | _ -> ());
    match (get multipath "split", get multipath "single_path") with
    | Some split, Some single ->
        (match (int_field split "path2_pkts", int_field split "folded_decodes")
         with
        | Some p2, Some f when p2 = 0 || f = 0 ->
            err path
              "runtime_handover: split arm never exercised the fold \
               (path2_pkts=%d folded_decodes=%d)"
              p2 f
        | _ -> ());
        (match (int_field single "path2_pkts",
                int_field single "folded_decodes") with
        | Some 0, Some 0 -> ()
        | Some p2, Some f ->
            err path
              "runtime_handover: single_path arm used path 2 \
               (path2_pkts=%d folded_decodes=%d)"
              p2 f
        | _ -> ())
    | _ -> ()
  end

(* Cross-row: the adversary family must carry its four arms exactly
   once and the leakage probe both of its arms; and the relations the
   family exists to enforce must hold in the data — the zero-rate arm
   sees no attacks and admits nothing, attack volume and admitted
   damage grow with the attack rate, the top-rate unauthenticated arm
   demonstrably admits attacker quACKs, the authenticated arm admits
   exactly zero while actually exercising the defences (tag rejections
   and guard drops both non-zero), and shaping buys the observer's
   accuracy down at a measurable cost in bytes. *)
let check_adversary_arms path rows =
  let adversary = Hashtbl.create 4 and leakage = Hashtbl.create 4 in
  List.iter
    (fun row ->
      match row with
      | Obs.Json.Obj fields
        when List.assoc_opt "section" fields
             = Some (Obs.Json.String "runtime_adversary") -> (
          match
            (List.assoc_opt "scenario" fields, List.assoc_opt "arm" fields)
          with
          | Some (Obs.Json.String "adversary"), Some (Obs.Json.String arm) ->
              Hashtbl.add adversary arm fields
          | Some (Obs.Json.String "leakage"), Some (Obs.Json.String arm) ->
              Hashtbl.add leakage arm fields
          | _ -> () (* field-level errors already reported *))
      | _ -> ())
    rows;
  if Hashtbl.length adversary = 0 && Hashtbl.length leakage = 0 then ()
  else begin
    let get tbl arm =
      match Hashtbl.find_all tbl arm with
      | [ fields ] -> Some fields
      | l ->
          err path "runtime_adversary: %d %S rows (want exactly 1)"
            (List.length l) arm;
          None
    in
    let int_field fields name =
      match List.assoc_opt name fields with
      | Some (Obs.Json.Int v) -> Some v
      | _ -> None
    in
    let float_field fields name =
      match List.assoc_opt name fields with
      | Some (Obs.Json.Float v) -> Some v
      | Some (Obs.Json.Int v) -> Some (float_of_int v)
      | _ -> None
    in
    (match (get adversary "unauth_rate0", get adversary "unauth_rate_half",
            get adversary "unauth", get adversary "auth") with
    | Some rate0, Some half, Some unauth, Some auth ->
        let attack_names =
          [ "attacks_spoofed"; "attacks_replayed"; "attacks_truncated";
            "attacks_bitflipped" ]
        in
        List.iter
          (fun name ->
            match int_field rate0 name with
            | Some 0 | None -> ()
            | Some v ->
                err path "runtime_adversary: zero-rate arm has %s=%d" name v)
          ("attacker_admitted" :: "attacker_resyncs" :: "malformed"
          :: attack_names);
        List.iter
          (fun name ->
            match (int_field half name, int_field unauth name) with
            | Some h, Some u when h > u ->
                err path
                  "runtime_adversary: %s not monotone in attack rate (%d at \
                   half, %d at full)"
                  name h u
            | _ -> ())
          ("attacker_admitted" :: attack_names);
        (match int_field unauth "attacker_admitted" with
        | Some v when v <= 0 ->
            err path
              "runtime_adversary: top-rate unauthenticated arm admitted no \
               attacker quACKs — the damage arm shows no damage"
        | _ -> ());
        (match int_field auth "attacker_admitted" with
        | Some 0 | None -> ()
        | Some v ->
            err path
              "runtime_adversary: authenticated arm admitted %d attacker \
               quACKs (must be 0)"
              v);
        (match int_field auth "malformed" with
        | Some 0 | None -> ()
        | Some v ->
            err path
              "runtime_adversary: authenticated arm decoded %d malformed \
               quACKs (tampering must die at the tag, not the codec)"
              v);
        (match (int_field auth "auth_rejected", int_field auth "replays_dropped")
         with
        | Some r, Some d when r <= 0 || d <= 0 ->
            err path
              "runtime_adversary: authenticated arm never exercised the \
               defences (auth_rejected=%d replays_dropped=%d)"
              r d
        | _ -> ());
        List.iter
          (fun (arm_name, fields) ->
            match
              (int_field fields "auth_rejected",
               int_field fields "replays_dropped")
            with
            | Some r, Some d when r <> 0 || d <> 0 ->
                err path
                  "runtime_adversary: unauthenticated arm %S reports \
                   defences firing (auth_rejected=%d replays_dropped=%d)"
                  arm_name r d
            | _ -> ())
          [ ("unauth_rate0", rate0); ("unauth_rate_half", half);
            ("unauth", unauth) ]
    | _ -> ());
    match (get leakage "unshaped", get leakage "shaped") with
    | Some unshaped, Some shaped ->
        (match (float_field unshaped "observer_accuracy",
                float_field shaped "observer_accuracy") with
        | Some u, Some s when s >= u ->
            err path
              "runtime_adversary: shaping did not reduce observer accuracy \
               (unshaped %.2f, shaped %.2f)"
              u s
        | _ -> ());
        (match (int_field unshaped "quack_bytes_on_wire",
                int_field shaped "quack_bytes_on_wire") with
        | Some u, Some s when s <= u ->
            err path
              "runtime_adversary: shaped arm claims accuracy reduction for \
               free (bytes unshaped %d, shaped %d)"
              u s
        | _ -> ());
        (match int_field unshaped "dummy_quacks" with
        | Some 0 | None -> ()
        | Some d ->
            err path "runtime_adversary: unshaped arm emitted %d dummies" d);
        (match int_field shaped "dummy_quacks" with
        | Some d when d <= 0 ->
            err path "runtime_adversary: shaped arm emitted no dummies"
        | _ -> ())
    | _ -> ()
  end

let check_bench path doc =
  match Obs.Json.member "rows" doc with
  | Some (Obs.Json.List []) -> err path "empty \"rows\""
  | Some (Obs.Json.List rows) ->
      List.iteri (check_row path) rows;
      check_datapath_pairs path rows;
      check_shard_pairs path rows;
      check_handover_arms path rows;
      check_adversary_arms path rows;
      if !errors = 0 then
        Printf.printf "benchcheck: %s: %d rows ok\n" path (List.length rows)
  | _ -> err path "missing \"rows\" list"

let check_violation path i = function
  | Obs.Json.Obj fields ->
      let str name =
        match List.assoc_opt name fields with
        | Some (Obs.Json.String s) ->
            if s = "" then err path "violation %d: %S is empty" i name
        | Some _ -> err path "violation %d: %S is not a string" i name
        | None -> err path "violation %d: missing %S" i name
      in
      let nat name =
        match List.assoc_opt name fields with
        | Some (Obs.Json.Int n) ->
            if n < 0 then err path "violation %d: %S is negative" i name
        | Some _ -> err path "violation %d: %S is not an integer" i name
        | None -> err path "violation %d: missing %S" i name
      in
      str "file";
      str "rule";
      str "message";
      nat "line";
      nat "col"
  | _ -> err path "violation %d: not an object" i

let check_lint path doc =
  let count name =
    match Obs.Json.member name doc with
    | Some (Obs.Json.Int n) when n >= 0 -> Some n
    | Some _ ->
        err path "%S is not a non-negative integer" name;
        None
    | None ->
        err path "missing %S" name;
        None
  in
  let files = count "files_checked" in
  (match files with
  | Some 0 ->
      err path "\"files_checked\" is zero: the lint walked nothing (bad path?)"
  | Some _ | None -> ());
  match Obs.Json.member "violations" doc with
  | Some (Obs.Json.List vs) ->
      List.iteri (check_violation path) vs;
      (match count "violation_count" with
      | Some n when n <> List.length vs ->
          err path "\"violation_count\" (%d) disagrees with the list (%d)" n
            (List.length vs)
      | Some _ | None -> ());
      if !errors = 0 then
        Printf.printf "benchcheck: %s: lint report ok (%d files, %d violations)\n"
          path
          (match files with Some n -> n | None -> 0)
          (List.length vs)
  | Some _ -> err path "\"violations\" is not a list"
  | None -> err path "missing \"violations\" list"

let check_file path =
  match Obs.Json.of_file path with
  | Error e -> err path "unparseable: %s" e
  | Ok doc -> (
      match Obs.Json.member "schema" doc with
      | Some (Obs.Json.String "sidecar-bench-1") -> check_bench path doc
      | Some (Obs.Json.String "sidecar-lint-1") -> check_lint path doc
      | Some (Obs.Json.String s) -> err path "unknown schema %S" s
      | _ -> err path "missing \"schema\" tag")

let () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as paths) ->
      List.iter check_file paths;
      if !errors > 0 then begin
        Printf.eprintf "benchcheck: %d problem(s)\n" !errors;
        exit 1
      end
  | _ ->
      prerr_endline "usage: benchcheck FILE.json [FILE.json ...]";
      exit 2
