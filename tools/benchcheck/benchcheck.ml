(* benchcheck: validate the bench harness's machine-readable outputs.

   Usage: benchcheck FILE.json [FILE.json ...]

   Each file must be a "sidecar-bench-1" document:
     { "schema": "sidecar-bench-1",
       "rows": [ { "section": <string>, ...fields }, ... ] }
   where every row has a string "section", at least one numeric field,
   and no null values — the bench writes nan/inf as null, so a null
   here means a measurement silently failed and the run must not be
   archived as data. Exits non-zero (listing every problem) on any
   violation; prints a one-line summary per valid file. *)

let errors = ref 0

let err path fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "benchcheck: %s: %s\n" path msg)
    fmt

let check_row path i = function
  | Obs.Json.Obj fields ->
      (match List.assoc_opt "section" fields with
      | Some (Obs.Json.String _) -> ()
      | Some _ -> err path "row %d: \"section\" is not a string" i
      | None -> err path "row %d: missing \"section\"" i);
      let numeric = ref 0 in
      List.iter
        (fun (name, v) ->
          match v with
          | Obs.Json.Int _ -> incr numeric
          | Obs.Json.Float f ->
              if Float.is_finite f then incr numeric
              else err path "row %d: field %S is not finite" i name
          | Obs.Json.Null ->
              err path
                "row %d: field %S is null (a measurement produced nan/inf)" i
                name
          | Obs.Json.String _ | Obs.Json.Bool _ -> ()
          | Obs.Json.List _ | Obs.Json.Obj _ ->
              err path "row %d: field %S is nested (rows must be flat)" i name)
        fields;
      if !numeric = 0 then err path "row %d: no numeric field" i;
      (* A merged parallel-runtime row must carry the full speedup
         record, and its job/replication counts must be sane — a bench
         that lost a field here measured nothing. *)
      if List.assoc_opt "section" fields = Some (Obs.Json.String "runtime_parallel")
      then begin
        let num name =
          match List.assoc_opt name fields with
          | Some (Obs.Json.Int n) -> Some (float_of_int n)
          | Some (Obs.Json.Float f) when Float.is_finite f -> Some f
          | Some _ | None ->
              err path "row %d: runtime_parallel field %S missing or non-numeric"
                i name;
              None
        in
        let check_pos name =
          match num name with
          | Some v when v <= 0. ->
              err path "row %d: runtime_parallel field %S must be positive" i
                name
          | Some _ | None -> ()
        in
        List.iter check_pos
          [ "jobs"; "replications"; "flows_per_replication"; "seq_wall_s";
            "par_wall_s"; "speedup" ]
      end
  | _ -> err path "row %d: not an object" i

let check_file path =
  match Obs.Json.of_file path with
  | Error e -> err path "unparseable: %s" e
  | Ok doc -> (
      (match Obs.Json.member "schema" doc with
      | Some (Obs.Json.String "sidecar-bench-1") -> ()
      | Some (Obs.Json.String s) -> err path "unknown schema %S" s
      | _ -> err path "missing \"schema\" tag");
      match Obs.Json.member "rows" doc with
      | Some (Obs.Json.List []) -> err path "empty \"rows\""
      | Some (Obs.Json.List rows) ->
          List.iteri (check_row path) rows;
          if !errors = 0 then
            Printf.printf "benchcheck: %s: %d rows ok\n" path (List.length rows)
      | _ -> err path "missing \"rows\" list")

let () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as paths) ->
      List.iter check_file paths;
      if !errors > 0 then begin
        Printf.eprintf "benchcheck: %d problem(s)\n" !errors;
        exit 1
      end
  | _ ->
      prerr_endline "usage: benchcheck FILE.json [FILE.json ...]";
      exit 2
