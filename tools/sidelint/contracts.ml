(* Sidespec contract declarations.

   Modules opt into machine-checked refinement contracts with floating
   attributes:

     [@@@sidespec "psum-in-field: every element of sums stays in [0, p)"]

   Grammar of the payload string:

     "<id>: <description>"       a refinement contract; <id> matches
                                 [a-z][a-z0-9-]* and must be paired with
                                 a runtime twin in the same module — an
                                 [Invariant.check] whose [~name] string
                                 begins with "<id>"
     "state <binding>: <why>"    blesses one module-level mutable
                                 binding from the state-escape /
                                 exec-isolation rules (hidden global
                                 state that is global *by design*,
                                 e.g. the Invariant debug gate)

   The static half of every contract is this file plus the dataflow
   pass: the declaration is validated, the twin's existence is
   enforced, and field-element provenance protects the arithmetic the
   contract ranges over. The dynamic half is the [Invariant.check] twin
   itself plus the qcheck properties in test/spec. *)

open Ppxlib

type t = {
  contracts : (string * Location.t) list;  (* declaration order *)
  blessed : string list;  (* module-level bindings excused from state rules *)
  malformed : (string * Location.t) list;
}

let empty = { contracts = []; blessed = []; malformed = [] }

let is_contract_id s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false)
       s

(* "state <binding>: <why>" | "<id>: <description>" *)
let classify payload =
  match String.index_opt payload ':' with
  | None -> `Malformed "missing \":\" separator"
  | Some i ->
      let head = String.trim (String.sub payload 0 i) in
      let desc =
        String.trim (String.sub payload (i + 1) (String.length payload - i - 1))
      in
      if desc = "" then `Malformed "empty description after \":\""
      else if String.length head > 6 && String.sub head 0 6 = "state " then
        let binding = String.trim (String.sub head 6 (String.length head - 6)) in
        if binding = "" then `Malformed "state blessing names no binding"
        else `State binding
      else if is_contract_id head then `Contract head
      else
        `Malformed
          (Printf.sprintf
             "contract id %S is not of the form [a-z][a-z0-9-]*" head)

let payload_string = function
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* Collect every [@@@sidespec ...] in the structure, at any module
   depth (contracts may live inside sub-modules). *)
let of_structure str =
  let acc = ref empty in
  let add_attr (attr : attribute) =
    if attr.attr_name.txt = "sidespec" then
      let loc = attr.attr_loc in
      match payload_string attr.attr_payload with
      | None ->
          acc :=
            { !acc with
              malformed = ("payload must be a string literal", loc) :: !acc.malformed }
      | Some payload -> (
          match classify payload with
          | `Contract id ->
              acc := { !acc with contracts = (id, loc) :: !acc.contracts }
          | `State binding ->
              acc := { !acc with blessed = binding :: !acc.blessed }
          | `Malformed why ->
              acc := { !acc with malformed = (why, loc) :: !acc.malformed })
  in
  let iter =
    object
      inherit Ast_traverse.iter as super

      method! structure_item item =
        (match item.pstr_desc with
        | Pstr_attribute attr -> add_attr attr
        | _ -> ());
        super#structure_item item
    end
  in
  iter#structure str;
  {
    contracts = List.rev !acc.contracts;
    blessed = List.rev !acc.blessed;
    malformed = List.rev !acc.malformed;
  }

(* ------------------------------------------------------------------ *)
(* Runtime twins                                                       *)

(* The leftmost string constant of an expression: a check name like
   ("psum-in-field: " ^ what) still identifies its contract. *)
let rec leftmost_string e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Lident "^"; _ }; _ }, (_, l) :: _) ->
      leftmost_string l
  | _ -> None

let is_invariant_check = function
  | [ "Invariant"; "check" ]
  | [ "Sidecar_quack"; "Invariant"; "check" ] ->
      true
  | _ -> false

let flatten lid = match Longident.flatten_exn lid with l -> l | exception _ -> []

(* Every ~name string reachable from an [Invariant.check] call. *)
let twin_names str =
  let names = ref [] in
  let iter =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
          when is_invariant_check (flatten txt) -> (
            match
              List.find_opt (fun (l, _) -> l = Labelled "name") args
            with
            | Some (_, arg) -> (
                match leftmost_string arg with
                | Some s -> names := s :: !names
                | None -> ())
            | None -> ())
        | _ -> ());
        super#expression e
    end
  in
  iter#structure str;
  !names

let has_twin ~names id =
  let prefix = id ^ ":" in
  let plen = String.length prefix in
  List.exists
    (fun n ->
      n = id || (String.length n >= plen && String.sub n 0 plen = prefix))
    names

(* Validate the declarations of one module against its body; [report]
   receives (loc, message) for each problem. *)
let check ~report t str =
  List.iter
    (fun (why, loc) -> report loc ("malformed [@@@sidespec]: " ^ why))
    t.malformed;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (id, loc) ->
      if Hashtbl.mem seen id then
        report loc
          (Printf.sprintf "contract %S declared more than once in this module" id)
      else Hashtbl.add seen id ())
    t.contracts;
  let names = twin_names str in
  List.iter
    (fun (id, loc) ->
      if not (has_twin ~names id) then
        report loc
          (Printf.sprintf
             "contract %S has no runtime twin: add an Invariant.check whose \
              ~name starts with \"%s: \" so the declared refinement is also \
              enforced on live state"
             id id))
    (* only the first declaration of a duplicated id demands a twin *)
    (List.sort_uniq
       (fun (a, _) (b, _) -> String.compare a b)
       t.contracts)
