(* Flow-sensitive passes: field-element provenance and module-level
   mutable-state escape.

   Field provenance
   ----------------
   A value is *reduced* (a genuine field element, in [0, p)) only after
   flowing out of the field API: an application of
   [F.add]/[F.sub]/[F.mul]/[F.neg]/[F.pow]/[F.inv]/[F.div]/[F.of_int]
   (or [Modular.*] / [Log_field.*]), or the constants [F.one]/[F.zero].
   Raw integer arithmetic on a reduced value can silently leave the
   field — a missed [mod p] is undetectable garbage by the time the
   decoder factors the difference polynomial — so outside lib/field
   (which *implements* the API and is audited line by line) applying a
   raw operator to a reduced operand is a violation.

   Taint propagates through let-bindings, match/function cases (a
   binder of a reduced scrutinee is reduced), if/else joins, pipelines
   ([x |> F.of_int], [F.of_int @@ x]), refs ([let pw = ref F.one] makes
   [!pw] reduced until a raw assignment clears it), and sequencing.
   Storage reads are raw by fiat: [Bigarray.Array1.get]/[unsafe_get]
   (and the [A1]-style aliases the flat datapath uses) return bare ints
   out of an untyped arena, so provenance never survives the round
   trip — even a sum that was stored reduced must re-enter the field
   API before arithmetic.
   The analysis is intraprocedural: parameters enter raw, calls of
   unknown functions return raw. That under-approximates — the point
   is zero false positives on audited code, with the seeded fixture
   tree pinning what the pass must catch.

   Modules bound with [let module F = (val e ...)] are treated as field
   modules: in this codebase unpacking a first-class module is how a
   [Modular.S] is brought into scope (Psum, Decoder, Sender_state).

   State escape
   ------------
   Generalizes the lib/exec isolation rule: module-level [ref] /
   [Hashtbl.create] / [Atomic.make] / ... anywhere in lib/ is hidden
   global state — it escapes the value graph, survives across runs and
   breaks the replay/jobs-invariance story. lib/exec keeps the stricter
   domain-sharing variant (including [Array.make]/[Bytes.create]);
   elsewhere the stateful-container subset applies, and a module can
   bless a deliberate global with
   [@@@sidespec "state <binding>: <why>"]. *)

open Ppxlib

let flatten lid = match Longident.flatten_exn lid with l -> l | exception _ -> []
let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l

(* ------------------------------------------------------------------ *)
(* Field provenance                                                    *)

module Smap = Map.Make (String)
module Sset = Set.Make (String)

type env = {
  vars : bool Smap.t;  (* name -> holds a reduced field element *)
  refs : bool Smap.t;  (* name -> ref cell currently holding reduced *)
  field_mods : Sset.t;  (* module names bound to a field structure *)
}

let env0 = {
  vars = Smap.empty;
  refs = Smap.empty;
  field_mods = Sset.of_list [ "Modular"; "Log_field" ];
}

(* Operations of the field API whose result is reduced. *)
let reducing_ops =
  [ "add"; "sub"; "mul"; "neg"; "pow"; "inv"; "div"; "of_int"; "reduce" ]

let reduced_consts = [ "one"; "zero" ]

(* Raw integer operators that can carry a value out of [0, p). *)
let raw_ops =
  [ "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "succ"; "pred"; "abs" ]

let is_field_module env = function
  | [ m ] | [ _; m ] -> Sset.mem m env.field_mods
  | _ -> false

(* Untyped storage reads re-enter the analysis raw. Listed explicitly
   (rather than relying on unknown calls falling through to raw) so a
   future field module exposing [get] cannot silently reclassify arena
   reads as reduced. *)
let storage_read name =
  match List.rev name with
  | ("get" | "unsafe_get") :: m :: _ ->
      List.mem m [ "Array1"; "Array2"; "Array3"; "Genarray"; "A1"; "A2"; "A3" ]
  | _ -> false

let field_op_result env name =
  if storage_read name then false
  else
    match List.rev name with
    | op :: (_ :: _ as rev_path) when List.mem op reducing_ops ->
        is_field_module env (List.rev rev_path)
    | _ -> false

let field_const env name =
  match List.rev name with
  | c :: (_ :: _ as rev_path) when List.mem c reduced_consts ->
      is_field_module env (List.rev rev_path)
  | _ -> false

let rec bind_pattern taint env (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> { env with vars = Smap.add txt taint env.vars }
  | Ppat_alias (inner, { txt; _ }) ->
      bind_pattern taint { env with vars = Smap.add txt taint env.vars } inner
  | Ppat_tuple ps | Ppat_array ps ->
      List.fold_left (bind_pattern taint) env ps
  | Ppat_construct (_, Some (_, inner)) | Ppat_variant (_, Some inner) ->
      bind_pattern taint env inner
  | Ppat_record (fields, _) ->
      List.fold_left (fun env (_, inner) -> bind_pattern taint env inner) env fields
  | Ppat_constraint (inner, _) | Ppat_open (_, inner) | Ppat_lazy inner ->
      bind_pattern taint env inner
  | Ppat_or (a, b) -> bind_pattern taint (bind_pattern taint env a) b
  | _ -> env

(* [eval report env e] walks [e], reports raw-op-on-reduced violations,
   and returns (is_reduced, env after side effects). *)
let rec eval report env e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let name = strip_stdlib (flatten txt) in
      match name with
      | [ x ] -> (
          match Smap.find_opt x env.vars with
          | Some t -> (t, env)
          | None -> (false, env))
      | _ -> (field_const env name, env))
  | Pexp_constant _ -> (false, env)
  | Pexp_let (_, vbs, body) ->
      (* route through [bind_value] so [let pw = ref F.one in ...]
         registers a tracked ref cell, exactly as at structure level *)
      let env' = List.fold_left (bind_value report) env vbs in
      let t, _ = eval report env' body in
      (t, env)
  | Pexp_apply (f, args) -> eval_apply report env e f args
  | Pexp_sequence (a, b) ->
      let _, env = eval report env a in
      eval report env b
  | Pexp_ifthenelse (c, th, el) ->
      let _, env = eval report env c in
      let t1, _ = eval report env th in
      let t2 =
        match el with
        | Some el -> let t, _ = eval report env el in t
        | None -> false
      in
      (t1 || t2, env)
  | Pexp_match (scrut, cases) ->
      let ts, env = eval report env scrut in
      (eval_cases report env ts cases, env)
  | Pexp_try (body, cases) ->
      let t, env = eval report env body in
      (t || eval_cases report env false cases, env)
  | Pexp_function (params, _, body) ->
      let inner =
        List.fold_left
          (fun env p ->
            match p.pparam_desc with
            | Pparam_val (_, default, pat) ->
                (match default with
                | Some d -> ignore (eval report env d)
                | None -> ());
                bind_pattern false env pat
            | Pparam_newtype _ -> env)
          env params
      in
      (match body with
      | Pfunction_body b -> ignore (eval report inner b)
      | Pfunction_cases (cases, _, _) ->
          ignore (eval_cases report inner false cases));
      (false, env)
  | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) ->
      eval report env inner
  | Pexp_letmodule ({ txt = Some name; _ }, { pmod_desc = Pmod_unpack _; _ }, body)
    ->
      let env' = { env with field_mods = Sset.add name env.field_mods } in
      let t, _ = eval report env' body in
      (t, env)
  | Pexp_letmodule (_, me, body) ->
      walk_module report env me;
      eval report env body
  | Pexp_open (od, body) ->
      walk_module report env od.popen_expr;
      eval report env body
  | Pexp_tuple es | Pexp_array es ->
      let env =
        List.fold_left (fun env e -> snd (eval report env e)) env es
      in
      (false, env)
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
      let env =
        match arg with Some a -> snd (eval report env a) | None -> env
      in
      (false, env)
  | Pexp_record (fields, base) ->
      let env =
        match base with Some b -> snd (eval report env b) | None -> env
      in
      let env =
        List.fold_left (fun env (_, e) -> snd (eval report env e)) env fields
      in
      (false, env)
  | Pexp_field (inner, _) ->
      let _, env = eval report env inner in
      (false, env)
  | Pexp_setfield (lhs, _, rhs) ->
      let _, env = eval report env lhs in
      let _, env = eval report env rhs in
      (false, env)
  | Pexp_while (c, body) ->
      let _, env = eval report env c in
      let _, _ = eval report env body in
      (false, env)
  | Pexp_for ({ ppat_desc = Ppat_var { txt; _ }; _ }, lo, hi, _, body) ->
      let _, env = eval report env lo in
      let _, env = eval report env hi in
      let inner = { env with vars = Smap.add txt false env.vars } in
      ignore (eval report inner body);
      (false, env)
  | Pexp_for (_, lo, hi, _, body) ->
      let _, env = eval report env lo in
      let _, env = eval report env hi in
      ignore (eval report env body);
      (false, env)
  | Pexp_assert inner | Pexp_lazy inner ->
      let _, env = eval report env inner in
      (false, env)
  | _ -> (false, env)

and eval_cases report env scrut_taint cases =
  List.fold_left
    (fun any case ->
      let inner = bind_pattern scrut_taint env case.pc_lhs in
      (match case.pc_guard with
      | Some g -> ignore (eval report inner g)
      | None -> ());
      let t, _ = eval report inner case.pc_rhs in
      any || t)
    false cases

and eval_apply report env whole f args =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let name = strip_stdlib (flatten txt) in
      match name with
      | [ "!" ] -> (
          match args with
          | [ (_, { pexp_desc = Pexp_ident { txt = Lident r; _ }; _ }) ] ->
              ((match Smap.find_opt r env.refs with
               | Some t -> t
               | None -> false),
               env)
          | _ ->
              let env = eval_args report env args in
              (false, env))
      | [ ":=" ] -> (
          match args with
          | [ ((_, { pexp_desc = Pexp_ident { txt = Lident r; _ }; _ }));
              (_, rhs) ] ->
              let t, env = eval report env rhs in
              (false, { env with refs = Smap.add r t env.refs })
          | _ ->
              let env = eval_args report env args in
              (false, env))
      | [ "ref" ] -> (
          (* [ref e] as an expression: remember nothing here — the
             binding form in Pexp_let records it via [bind_ref]. *)
          match args with
          | [ (_, init) ] -> eval report env init
          | _ -> (false, eval_args report env args))
      | [ "|>" ] -> (
          match args with
          | [ (_, arg); (_, fn) ] -> eval_pipe report env ~fn ~arg
          | _ -> (false, eval_args report env args))
      | [ "@@" ] -> (
          match args with
          | [ (_, fn); (_, arg) ] -> eval_pipe report env ~fn ~arg
          | _ -> (false, eval_args report env args))
      | [ op ] when List.mem op raw_ops ->
          let env =
            List.fold_left
              (fun env (_, a) ->
                let t, env = eval report env a in
                if t then
                  report a.pexp_loc
                    (Printf.sprintf
                       "raw (%s) on a reduced field element; the result may \
                        leave [0, p) — keep the value inside the Modular API \
                        or reduce it explicitly"
                       op);
                env)
              env args
          in
          (false, env)
      | _ ->
          let env = eval_args report env args in
          (field_op_result env name, env))
  | _ ->
      let _, env = eval report env f in
      let env = eval_args report env args in
      ignore whole;
      (false, env)

and eval_pipe report env ~fn ~arg =
  let _, env = eval report env arg in
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } ->
      (field_op_result env (strip_stdlib (flatten txt)), env)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, inner_args) ->
      let env = eval_args report env inner_args in
      (field_op_result env (strip_stdlib (flatten txt)), env)
  | _ ->
      let _, env = eval report env fn in
      (false, env)

and eval_args report env args =
  List.fold_left (fun env (_, a) -> snd (eval report env a)) env args

and walk_module report env me =
  match me.pmod_desc with
  | Pmod_structure str -> check_provenance_structure report env str
  | Pmod_functor (_, body) -> walk_module report env body
  | Pmod_constraint (inner, _) -> walk_module report env inner
  | Pmod_apply (a, b) ->
      walk_module report env a;
      walk_module report env b
  | Pmod_apply_unit inner -> walk_module report env inner
  | Pmod_unpack e -> ignore (eval report env e)
  | Pmod_ident _ | Pmod_extension _ -> ()

(* [let pw = ref F.one] introduces a tracked ref cell; other bindings
   track the value's own taint. *)
and bind_value report env vb =
  match vb.pvb_expr.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "ref"; _ }; _ },
        [ (_, init) ] ) -> (
      let t, env = eval report env init in
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt; _ } -> { env with refs = Smap.add txt t env.refs }
      | _ -> env)
  | _ ->
      let t, env = eval report env vb.pvb_expr in
      bind_pattern t env vb.pvb_pat

and check_provenance_structure report env str =
  let env =
    List.fold_left
      (fun env (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.fold_left (bind_value report) env vbs
        | Pstr_eval (e, _) -> snd (eval report env e)
        | Pstr_module { pmb_name = { txt = Some name; _ };
                        pmb_expr = { pmod_desc = Pmod_unpack _; _ }; _ } ->
            { env with field_mods = Sset.add name env.field_mods }
        | Pstr_module { pmb_expr; _ } ->
            walk_module report env pmb_expr;
            env
        | Pstr_recmodule mbs ->
            List.iter (fun mb -> walk_module report env mb.pmb_expr) mbs;
            env
        | _ -> env)
      env str
  in
  ignore env

let check_provenance ~report str =
  check_provenance_structure report env0 str

(* ------------------------------------------------------------------ *)
(* Module-level mutable state                                          *)

(* Constructors whose module-level use is always suspect. *)
let stateful_ctor = function
  | [ "ref" ] -> Some "ref"
  | [ "Hashtbl"; "create" ] -> Some "Hashtbl.create"
  | [ "Atomic"; "make" ] -> Some "Atomic.make"
  | [ "Queue"; "create" ] -> Some "Queue.create"
  | [ "Stack"; "create" ] -> Some "Stack.create"
  | [ "Buffer"; "create" ] -> Some "Buffer.create"
  | [ "Mutex"; "create" ] -> Some "Mutex.create"
  | [ "Condition"; "create" ] -> Some "Condition.create"
  | [ "Domain"; "DLS"; "new_key" ] -> Some "Domain.DLS.new_key"
  | _ -> None

(* lib/exec additionally bans raw buffers: a module-level
   [Array.make]/[Bytes.create] is written by whichever domain gets
   there first. Elsewhere those are precomputed-table idiom. *)
let exec_extra_ctor = function
  | [ "Bytes"; ("create" | "make") as f ] -> Some ("Bytes." ^ f)
  | [ "Array"; ("make" | "init" | "create_float" | "make_matrix") as f ] ->
      Some ("Array." ^ f)
  | _ -> None

let binding_names pat =
  let acc = ref [] in
  let rec go (p : pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
    | Ppat_tuple ps | Ppat_array ps -> List.iter go ps
    | Ppat_construct (_, Some (_, inner)) | Ppat_variant (_, Some inner) ->
        go inner
    | Ppat_record (fields, _) -> List.iter (fun (_, inner) -> go inner) fields
    | Ppat_constraint (inner, _) | Ppat_open (_, inner) | Ppat_lazy inner ->
        go inner
    | Ppat_or (a, b) -> go a; go b
    | _ -> ()
  in
  go pat;
  !acc

(* Walks only the module-initialisation-time part of each top-level
   binding — descent stops at function boundaries, where allocation
   becomes per-call. [report] receives (loc, what). *)
let check_module_state ~exec ~blessed ~report str =
  let ctor name =
    match stateful_ctor name with
    | Some _ as s -> s
    | None -> if exec then exec_extra_ctor name else None
  in
  let scan_binding vb =
    if not (List.exists (fun n -> List.mem n blessed) (binding_names vb.pvb_pat))
    then begin
      let iter =
        object (self)
          inherit Ast_traverse.iter as super

          method! expression e =
            match e.pexp_desc with
            | Pexp_function _ -> ()
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
                (match ctor (strip_stdlib (flatten txt)) with
                | Some what -> report loc what
                | None -> ());
                List.iter (fun (_, a) -> self#expression a) args
            | _ -> super#expression e
        end
      in
      iter#expression vb.pvb_expr
    end
  in
  let rec scan_structure str =
    List.iter
      (fun (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, bindings) -> List.iter scan_binding bindings
        | Pstr_module { pmb_expr; _ } -> scan_module pmb_expr
        | Pstr_recmodule mbs -> List.iter (fun mb -> scan_module mb.pmb_expr) mbs
        | _ -> ())
      str
  and scan_module me =
    match me.pmod_desc with
    | Pmod_structure str -> scan_structure str
    | Pmod_functor (_, body) -> scan_module body
    | Pmod_constraint (inner, _) -> scan_module inner
    | _ -> ()
  in
  scan_structure str
