(* sidelint — repo-specific static analysis for the sidecar reproduction.

   Walks every .ml file under the given paths (default: lib bin bench
   examples tools test) and enforces the invariants the compiler
   cannot:

     determinism       no ambient randomness or wall-clock reads in lib/
                       (lib/netsim/rng.ml and sim_time.ml are the
                       blessed wrappers)
     field-safety      lib/core modules importing the Modular/Field API
                       must not use raw ( * )/(mod), physical equality,
                       or polymorphic compare-as-a-value
     field-provenance  flow-sensitive: a value produced by the field API
                       (reduced, in [0, p)) must not meet a raw integer
                       operator anywhere in lib/ outside lib/field
     sidespec          [@@@sidespec "id: ..."] refinement contracts must
                       be well-formed, unique, and paired with an
                       Invariant.check runtime twin in the same module
     state-escape      no module-level mutable state in lib/ (the
                       stricter exec-isolation variant guards lib/exec);
                       bless deliberate globals with
                       [@@@sidespec "state <binding>: why"]
     totality          no List.hd / List.nth / Option.get anywhere
                       linted; no failwith / assert false in lib/
     effect-hygiene    no console output from lib/; stats flow through
                       Obs.Metrics / Obs.Trace

   Directories named "fixtures" are skipped while recursing (the
   test/lint seeded trees would otherwise fail @lint); passing one as
   an explicit root still lints it, which is how the self-test runs.

   Escape hatch: put "(* sidelint: allow — why *)" on the offending
   line, the line above it, or any line of the comment block ending
   directly above it.

   Exit status: 0 when clean, 1 when violations were found, 2 on usage
   or I/O errors. *)

let usage () =
  prerr_endline
    "usage: sidelint [--format text|json] [--strict] [path ...]\n\
     \  default paths: lib bin bench examples tools test\n\
     \  --strict additionally flags raw (+) and applied polymorphic =/<> in\n\
     \  field-bearing modules";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Skips "fixtures" while recursing: those trees hold deliberately
   seeded violations for the self-tests. An explicitly given root is
   walked unconditionally, so `sidelint fixtures/lib` still works. *)
let rec walk path acc =
  if Sys.file_exists path && Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        if name = "" || name.[0] = '.' || name = "_build" || name = "fixtures"
        then acc
        else walk (Filename.concat path name) acc)
      acc entries
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let format = ref `Text in
  let strict = ref false in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--format" :: "json" :: rest -> format := `Json; parse_args rest
    | "--format" :: "text" :: rest -> format := `Text; parse_args rest
    | "--strict" :: rest -> strict := true; parse_args rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | path :: rest -> paths := path :: !paths; parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots =
    match List.rev !paths with
    | [] -> [ "lib"; "bin"; "bench"; "examples"; "tools"; "test" ]
    | l -> l
  in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then (
        Printf.eprintf "sidelint: no such path: %s\n" r;
        exit 2))
    roots;
  let files = List.concat_map (fun r -> List.rev (walk r [])) roots in
  let violations =
    List.concat_map
      (fun file ->
        let source = read_file file in
        Rules.run ~path:file ~source ~strict:!strict)
      files
  in
  let violations = List.sort Report.compare_violation violations in
  (match !format with
  | `Json -> Report.print_json ~files_checked:(List.length files) violations
  | `Text ->
      List.iter Report.print_text violations;
      Printf.printf "sidelint: %d file%s checked, %d violation%s\n"
        (List.length files)
        (if List.length files = 1 then "" else "s")
        (List.length violations)
        (if List.length violations = 1 then "" else "s"));
  exit (if violations = [] then 0 else 1)
