(* sidelint — repo-specific static analysis for the sidecar reproduction.

   Walks every .ml file under the given paths (default: lib bin bench)
   and enforces the invariants the compiler cannot:

     determinism     no ambient randomness or wall-clock reads in lib/
                     (lib/netsim/rng.ml and sim_time.ml are the blessed
                     wrappers)
     field-safety    lib/core modules importing the Modular/Field API
                     must not use raw ( * )/(mod), physical equality, or
                     polymorphic compare-as-a-value
     totality        no List.hd / List.nth / Option.get anywhere linted;
                     no failwith / assert false in lib/
     effect-hygiene  no console output from lib/; stats flow through
                     Netsim.Stats / Netsim.Trace

   Escape hatch: put "(* sidelint: allow — why *)" on the offending
   line or the line above it.

   Exit status: 0 when clean, 1 when violations were found, 2 on usage
   or I/O errors. *)

let usage () =
  prerr_endline
    "usage: sidelint [--format text|json] [--strict] [path ...]\n\
     \  default paths: lib bin bench\n\
     \  --strict additionally flags raw (+) and applied polymorphic =/<> in\n\
     \  field-bearing modules";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec walk path acc =
  if Sys.file_exists path && Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        if name = "" || name.[0] = '.' || name = "_build" then acc
        else walk (Filename.concat path name) acc)
      acc entries
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let format = ref `Text in
  let strict = ref false in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--format" :: "json" :: rest -> format := `Json; parse_args rest
    | "--format" :: "text" :: rest -> format := `Text; parse_args rest
    | "--strict" :: rest -> strict := true; parse_args rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | path :: rest -> paths := path :: !paths; parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots = match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | l -> l in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then (
        Printf.eprintf "sidelint: no such path: %s\n" r;
        exit 2))
    roots;
  let files = List.concat_map (fun r -> List.rev (walk r [])) roots in
  let violations =
    List.concat_map
      (fun file ->
        let source = read_file file in
        Rules.run ~path:file ~source ~strict:!strict)
      files
  in
  let violations = List.sort Report.compare_violation violations in
  (match !format with
  | `Json -> Report.print_json violations
  | `Text ->
      List.iter Report.print_text violations;
      Printf.printf "sidelint: %d file%s checked, %d violation%s\n"
        (List.length files)
        (if List.length files = 1 then "" else "s")
        (List.length violations)
        (if List.length violations = 1 then "" else "s"));
  exit (if violations = [] then 0 else 1)
