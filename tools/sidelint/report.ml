(* Violation records and rendering (text and JSON). *)

type violation = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let compare_violation a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let print_text v =
  Printf.printf "%s:%d:%d: [%s] %s\n" v.file v.line v.col v.rule v.message

(* Minimal JSON string escaping: we control every emitted message, but
   file paths and quoted source can contain anything. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The machine-readable report is a "sidecar-lint-1" document, the lint
   sibling of bench's "sidecar-bench-1": a schema tag plus enough
   metadata that tools/benchcheck can validate a report without knowing
   the rule set. CI archives it as an artifact. *)
let print_json ~files_checked violations =
  Printf.printf "{\n  \"schema\": \"sidecar-lint-1\",\n";
  Printf.printf "  \"files_checked\": %d,\n" files_checked;
  Printf.printf "  \"violation_count\": %d,\n" (List.length violations);
  print_string "  \"violations\": [";
  List.iteri
    (fun i v ->
      if i > 0 then print_string ",";
      Printf.printf
        "\n    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
         \"message\": \"%s\"}"
        (json_escape v.file) v.line v.col (json_escape v.rule)
        (json_escape v.message))
    violations;
  if violations <> [] then print_string "\n  ";
  print_string "]\n}\n"
