(* The sidelint rule families, implemented as a single AST walk.

   Scoping is decided from the file's path segments, so the same rules
   apply to fixture trees used by the self-tests:
     - a path containing a "lib" segment is library code;
     - "lib" followed by a "core" segment is quACK core code;
     - everything else (bin/, bench/) only gets the partial-function
       checks.

   Suppression: a violation is dropped when the offending line, or the
   line directly above it, contains the marker "sidelint: allow"
   (conventionally written as an OCaml comment with a justification). *)

open Ppxlib

let allow_marker = "sidelint: allow"

type ctx = {
  path : string;  (* as reported, forward slashes *)
  in_lib : bool;
  in_core : bool;
  in_exec : bool;  (* lib/exec: the deterministic work pool *)
  determinism_exempt : bool;  (* the blessed randomness/clock modules *)
  field_scoped : bool;  (* lib/core module importing the Field/Modular API *)
  strict : bool;  (* also flag additive ops and applied polymorphic = *)
  source_lines : string array;  (* 0-indexed raw lines, for the escape hatch *)
  mutable violations : Report.violation list;
}

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

let segments path = String.split_on_char '/' path

let has_suffix_path path suffix =
  let p = segments path and s = segments suffix in
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
  drop (List.length p - List.length s) p = s

(* Files where nondeterministic primitives are the point: the explicit
   RNG wrapper and the virtual clock. *)
let determinism_allowlist = [ "netsim/rng.ml"; "netsim/sim_time.ml" ]

let make_ctx ~path ~source ~strict =
  let segs = segments path in
  let in_lib = List.mem "lib" segs in
  let lib_scope sub =
    let rec after_lib = function
      | "lib" :: rest -> List.mem sub rest
      | _ :: rest -> after_lib rest
      | [] -> false
    in
    after_lib segs
  in
  let in_core = lib_scope "core" in
  let in_exec = lib_scope "exec" in
  {
    path;
    in_lib;
    in_core;
    in_exec;
    determinism_exempt =
      List.exists (has_suffix_path path) determinism_allowlist;
    field_scoped = in_core && contains_substring source "Modular";
    strict;
    source_lines = Array.of_list (String.split_on_char '\n' source);
    violations = [];
  }

let line_allows ctx l =
  let n = Array.length ctx.source_lines in
  let line i = if i >= 1 && i <= n then ctx.source_lines.(i - 1) else "" in
  let has i = contains_substring (line i) allow_marker in
  (* Same line, the line above, or anywhere in a comment block that ends
     on the line above (a multi-line "(* sidelint: allow — ... *)"). *)
  has l || has (l - 1)
  || (let ends_comment i =
        let t = String.trim (line i) in
        String.length t >= 2 && String.sub t (String.length t - 2) 2 = "*)"
      in
      let starts_comment i = contains_substring (line i) "(*" in
      ends_comment (l - 1)
      && (let rec scan i depth =
            depth <= 12 && i >= 1
            && (has i || ((not (starts_comment i)) && scan (i - 1) (depth + 1)))
          in
          scan (l - 1) 0))

let report ctx (loc : Location.t) rule message =
  let line = loc.loc_start.pos_lnum in
  if not (line_allows ctx line) then
    ctx.violations <-
      {
        Report.file = ctx.path;
        line;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        rule;
        message;
      }
      :: ctx.violations

(* ------------------------------------------------------------------ *)
(* Identifier classification                                           *)

let flatten lid = try Longident.flatten_exn lid with _ -> []

(* Strip a leading Stdlib. so [Stdlib.Random.int] and [Random.int]
   classify identically. *)
let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l

let nondeterministic_ident = function
  | "Random" :: _ ->
      Some "Stdlib.Random is seeded globally; use Netsim.Rng so runs replay from a seed"
  | [ "Sys"; "time" ] ->
      Some "Sys.time reads the process clock; use Netsim.Sim_time (virtual time)"
  | [ "Unix"; ("gettimeofday" | "time" | "gmtime" | "localtime") ] ->
      Some "wall-clock reads diverge across runs; use Netsim.Sim_time (virtual time)"
  | [ "Hashtbl"; "hash" ] ->
      Some
        "Hashtbl.hash output depends on value representation details; derive \
         an explicit hash"
  | [ "Hashtbl"; ("seeded_hash" | "randomize") ] ->
      Some "randomized hashing breaks replayability"
  | _ -> None

let partial_ident = function
  | [ "List"; "hd" ] -> Some "List.hd raises on []; match or use a total accessor"
  | [ "List"; "nth" ] -> Some "List.nth raises out of range; match or index an array"
  | [ "Option"; "get" ] -> Some "Option.get raises on None; match on the option"
  | _ -> None

let effectful_ident = function
  | [ ("print_endline" | "print_string" | "print_newline" | "print_char"
      | "print_int" | "print_float" | "print_bytes") as f ] ->
      Some (f ^ " writes to stdout from library code; use Obs.Metrics or Obs.Trace")
  | [ ("prerr_endline" | "prerr_string" | "prerr_newline") as f ] ->
      Some (f ^ " writes to stderr from library code; use Obs.Metrics or Obs.Trace")
  | [ "Printf"; ("printf" | "eprintf") ]
  | [ "Format"; ("printf" | "eprintf") ] ->
      Some
        "direct console output from library code; return data or use \
         Obs.Metrics/Trace (pp functions over an explicit formatter are fine)"
  | [ "Format"; ("std_formatter" | "err_formatter") ] | [ ("stdout" | "stderr") ]
    ->
      Some "library code must not capture the console; take a formatter argument"
  | _ -> None

(* Mutable-state constructors that must not run at module-initialisation
   time in lib/exec: a binding like [let seen = Hashtbl.create 16] is
   shared by every worker domain and silently breaks the jobs-invariance
   contract. (Inside a function body the same calls are fine — that
   state is per pool or per task.) *)
let shared_state_ctor = function
  | [ "ref" ] -> Some "ref"
  | [ "Hashtbl"; "create" ] -> Some "Hashtbl.create"
  | [ "Atomic"; "make" ] -> Some "Atomic.make"
  | [ "Queue"; "create" ] -> Some "Queue.create"
  | [ "Stack"; "create" ] -> Some "Stack.create"
  | [ "Buffer"; "create" ] -> Some "Buffer.create"
  | [ "Bytes"; ("create" | "make") as f ] -> Some ("Bytes." ^ f)
  | [ "Array"; ("make" | "init" | "create_float" | "make_matrix") as f ] ->
      Some ("Array." ^ f)
  | [ "Mutex"; "create" ] -> Some "Mutex.create"
  | [ "Condition"; "create" ] -> Some "Condition.create"
  | [ "Domain"; "DLS"; "new_key" ] -> Some "Domain.DLS.new_key"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* lib/exec isolation: no module-level mutable state                   *)

(* Walks only the module-initialisation-time part of each top-level
   binding — descent stops at function boundaries, where allocation
   becomes per-call. *)
let check_exec_module_state ctx str =
  let iter =
    object (self)
      inherit Ast_traverse.iter as super

      method! expression e =
        match e.pexp_desc with
        | Pexp_function _ -> ()
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
            (match shared_state_ctor (strip_stdlib (flatten txt)) with
            | Some what ->
                report ctx loc "exec-isolation"
                  (what
                 ^ " at module level in lib/exec is shared across worker \
                    domains; allocate it per pool or per task (ctx)")
            | None -> ());
            List.iter (fun (_, a) -> self#expression a) args
        | _ -> super#expression e
    end
  in
  List.iter
    (fun (item : structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter (fun vb -> iter#expression vb.pvb_expr) bindings
      | _ -> ())
    str

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)

let loc_key (loc : Location.t) = (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum)

let check_structure ctx str =
  if ctx.in_exec then check_exec_module_state ctx str;
  (* Identifier occurrences that are the head of an application; used to
     distinguish [compare a b] (fine) from [compare] passed as a value
     (polymorphic comparison smuggled into a sort or a Hashtbl). *)
  let applied_heads : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let iter =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { loc; _ }; _ }, _) ->
            Hashtbl.replace applied_heads (loc_key loc) ()
        | _ -> ());
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } ->
            let name = strip_stdlib (flatten txt) in
            let applied = Hashtbl.mem applied_heads (loc_key loc) in
            (* determinism *)
            if ctx.in_lib && not ctx.determinism_exempt then
              (match nondeterministic_ident name with
              | Some msg ->
                  report ctx loc "determinism"
                    (String.concat "." name ^ ": " ^ msg)
              | None -> ());
            (* totality: partial accessors everywhere, failwith in lib *)
            (match partial_ident name with
            | Some msg -> report ctx loc "totality" msg
            | None -> ());
            if ctx.in_lib && name = [ "failwith" ] then
              report ctx loc "totality"
                "failwith in library code; raise Invalid_argument with context \
                 or return a Result";
            (* effect hygiene *)
            if ctx.in_lib then (
              match effectful_ident name with
              | Some msg -> report ctx loc "effect-hygiene" msg
              | None -> ());
            (* exec isolation: Obs's process-wide registers are
               domain-local, so reading them from pool code silently
               drops worker data *)
            if ctx.in_exec then (
              match name with
              | [ "Obs"; "Sink"; "last" ] | [ "Sink"; "last" ] ->
                  report ctx loc "exec-isolation"
                    "Obs.Sink.last reads a domain-local register; worker \
                     results must flow through the task's ctx.sink"
              | _ -> ());
            (* field safety *)
            if ctx.field_scoped then (
              (match name with
              | [ ("*" | "mod") as op ] ->
                  report ctx loc "field-safety"
                    (Printf.sprintf
                       "raw (%s) in a field-bearing module; use the Modular \
                        API (16-bit-split mul keeps intermediates < 2^49)"
                       op)
              | [ "+" ] when ctx.strict ->
                  report ctx loc "field-safety"
                    "raw (+) in a field-bearing module (strict); use \
                     Modular.add so sums stay reduced"
              | [ ("==" | "!=") as op ] ->
                  report ctx loc "field-safety"
                    (Printf.sprintf
                       "physical equality (%s) in a field-bearing module; use \
                        F.equal or structural comparison on ints"
                       op)
              | _ -> ());
              match name with
              | [ ("compare" | "=" | "<>") as op ]
                when (not applied) || ctx.strict ->
                  report ctx loc "field-safety"
                    (Printf.sprintf
                       "polymorphic %s (%s) in a field-bearing module; use \
                        F.compare/F.equal or Int.compare"
                       (if applied then "comparison" else "comparison passed as a value")
                       op)
              | _ -> ())
        | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); pexp_loc; _ }
          when ctx.in_lib ->
            report ctx pexp_loc "totality"
              "assert false in library code; make the case impossible by \
               construction or raise with context"
        | _ -> ());
        super#expression e
    end
  in
  iter#structure str

let run ~path ~source ~strict =
  let ctx = make_ctx ~path ~source ~strict in
  (match
     let lexbuf = Lexing.from_string source in
     Lexing.set_filename lexbuf path;
     Parse.implementation lexbuf
   with
  | str -> check_structure ctx str
  | exception _ ->
      ctx.violations <-
        [ { Report.file = path; line = 1; col = 0; rule = "parse";
            message = "could not parse file" } ]);
  List.sort Report.compare_violation ctx.violations
