(* The sidelint rule families, implemented as a single AST walk plus
   the flow-sensitive Sidespec passes (Dataflow, Contracts).

   Scoping is decided from the file's path segments, so the same rules
   apply to fixture trees used by the self-tests:
     - a path containing a "lib" segment is library code, whether that
       path is "lib/core/psum.ml" from the repo root or
       "fixtures/lib/core/bad_field.ml" inside test/lint — fixture
       trees self-test with the exact production scoping;
     - "lib" followed by a "core" segment is quACK core code, "exec"
       the deterministic work pool, "field" the Modular implementation;
     - everything else (bin/, bench/, tools/, test/ support code) only
       gets the path-neutral checks (parse + partial accessors).
   The walker in sidelint.ml skips directories *named* "fixtures" while
   recursing, so `dune build @lint` can cover test/ without tripping on
   the seeded trees; the self-test reaches them by passing
   "fixtures/lib" as an explicit root.

   Suppression: a violation is dropped when the offending line, the
   line directly above it, or any line of the comment block ending
   directly above it contains the marker "sidelint: allow"
   (conventionally written as an OCaml comment with a justification). *)

(* Bound before [open Ppxlib]: ppxlib also exports a (deprecated)
   [Dataflow] module that would otherwise shadow ours. *)
module Flow = Dataflow

open Ppxlib

let allow_marker = "sidelint: allow"

type ctx = {
  path : string;  (* as reported, forward slashes *)
  in_lib : bool;
  in_core : bool;
  in_exec : bool;  (* lib/exec: the deterministic work pool *)
  in_field : bool;  (* lib/field: implements the reduced arithmetic *)
  determinism_exempt : bool;  (* the blessed randomness/clock modules *)
  field_scoped : bool;  (* lib/core module importing the Field/Modular API *)
  strict : bool;  (* also flag additive ops and applied polymorphic = *)
  source_lines : string array;  (* 0-indexed raw lines, for the escape hatch *)
  mutable violations : Report.violation list;
}

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

let segments path = String.split_on_char '/' path

let has_suffix_path path suffix =
  let p = segments path and s = segments suffix in
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
  drop (List.length p - List.length s) p = s

(* Files where nondeterministic primitives are the point: the explicit
   RNG wrapper and the virtual clock. *)
let determinism_allowlist = [ "netsim/rng.ml"; "netsim/sim_time.ml" ]

let make_ctx ~path ~source ~strict =
  let segs = segments path in
  let in_lib = List.mem "lib" segs in
  let lib_scope sub =
    let rec after_lib = function
      | "lib" :: rest -> List.mem sub rest
      | _ :: rest -> after_lib rest
      | [] -> false
    in
    after_lib segs
  in
  let in_core = lib_scope "core" in
  let in_exec = lib_scope "exec" in
  let in_field = lib_scope "field" in
  {
    path;
    in_lib;
    in_core;
    in_exec;
    in_field;
    determinism_exempt =
      List.exists (has_suffix_path path) determinism_allowlist;
    field_scoped = in_core && contains_substring source "Modular";
    strict;
    source_lines = Array.of_list (String.split_on_char '\n' source);
    violations = [];
  }

let count_occurrences line needle =
  let nl = String.length line and nn = String.length needle in
  let rec go i acc =
    if i + nn > nl then acc
    else if String.sub line i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let line_allows ctx l =
  let n = Array.length ctx.source_lines in
  let line i = if i >= 1 && i <= n then ctx.source_lines.(i - 1) else "" in
  let has i = contains_substring (line i) allow_marker in
  (* Same line, the line above, or any line of the comment block that
     ends directly above the violation. The block is delimited by
     comment nesting, not a fixed upward scan: walking up from [l-1],
     each "*)" still to resolve raises the depth and each "(*" lowers
     it, so a marker survives nested "(* ... *)" inside the
     justification and blocks of any length (bounded at 200 lines). *)
  has l || has (l - 1)
  || (let ends_comment i =
        let t = String.trim (line i) in
        String.length t >= 2 && String.sub t (String.length t - 2) 2 = "*)"
      in
      ends_comment (l - 1)
      && (let rec scan i depth found =
            if i < 1 || l - i > 200 then false
            else
              let found = found || has i in
              let depth =
                depth
                + count_occurrences (line i) "*)"
                - count_occurrences (line i) "(*"
              in
              if depth <= 0 then found (* the block opens on this line *)
              else scan (i - 1) depth found
          in
          scan (l - 1) 0 false))

let report ctx (loc : Location.t) rule message =
  let line = loc.loc_start.pos_lnum in
  if not (line_allows ctx line) then
    ctx.violations <-
      {
        Report.file = ctx.path;
        line;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        rule;
        message;
      }
      :: ctx.violations

(* ------------------------------------------------------------------ *)
(* Identifier classification                                           *)

let flatten lid = try Longident.flatten_exn lid with _ -> []

(* Strip a leading Stdlib. so [Stdlib.Random.int] and [Random.int]
   classify identically. *)
let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l

let nondeterministic_ident = function
  | "Random" :: _ ->
      Some "Stdlib.Random is seeded globally; use Netsim.Rng so runs replay from a seed"
  | [ "Sys"; "time" ] ->
      Some "Sys.time reads the process clock; use Netsim.Sim_time (virtual time)"
  | [ "Unix"; ("gettimeofday" | "time" | "gmtime" | "localtime") ] ->
      Some "wall-clock reads diverge across runs; use Netsim.Sim_time (virtual time)"
  | [ "Hashtbl"; "hash" ] ->
      Some
        "Hashtbl.hash output depends on value representation details; derive \
         an explicit hash"
  | [ "Hashtbl"; ("seeded_hash" | "randomize") ] ->
      Some "randomized hashing breaks replayability"
  | _ -> None

let partial_ident = function
  | [ "List"; "hd" ] -> Some "List.hd raises on []; match or use a total accessor"
  | [ "List"; "nth" ] -> Some "List.nth raises out of range; match or index an array"
  | [ "Option"; "get" ] -> Some "Option.get raises on None; match on the option"
  | _ -> None

let effectful_ident = function
  | [ ("print_endline" | "print_string" | "print_newline" | "print_char"
      | "print_int" | "print_float" | "print_bytes") as f ] ->
      Some (f ^ " writes to stdout from library code; use Obs.Metrics or Obs.Trace")
  | [ ("prerr_endline" | "prerr_string" | "prerr_newline") as f ] ->
      Some (f ^ " writes to stderr from library code; use Obs.Metrics or Obs.Trace")
  | [ "Printf"; ("printf" | "eprintf") ]
  | [ "Format"; ("printf" | "eprintf") ] ->
      Some
        "direct console output from library code; return data or use \
         Obs.Metrics/Trace (pp functions over an explicit formatter are fine)"
  | [ "Format"; ("std_formatter" | "err_formatter") ] | [ ("stdout" | "stderr") ]
    ->
      Some "library code must not capture the console; take a formatter argument"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Sidespec passes: contracts, state escape, field provenance          *)

let check_sidespec ctx str =
  let contracts = Contracts.of_structure str in
  (* Contract declarations are validated everywhere they appear, and
     each must carry its Invariant.check runtime twin. *)
  Contracts.check
    ~report:(fun loc msg -> report ctx loc "sidespec" msg)
    contracts str;
  (* Module-level mutable state: lib/exec keeps the strict
     domain-sharing rule; the rest of lib/ gets the escape analysis
     (hidden global state breaks replay and isolation), with
     [@@@sidespec "state <binding>: why"] as the principled bless. *)
  if ctx.in_exec then
    Flow.check_module_state ~exec:true ~blessed:contracts.Contracts.blessed
      ~report:(fun loc what ->
        report ctx loc "exec-isolation"
          (what
         ^ " at module level in lib/exec is shared across worker domains; \
            allocate it per pool or per task (ctx)"))
      str
  else if ctx.in_lib then
    Flow.check_module_state ~exec:false ~blessed:contracts.Contracts.blessed
      ~report:(fun loc what ->
        report ctx loc "state-escape"
          (what
         ^ " at module level is hidden global state: it escapes the value \
            graph and survives across runs, breaking replay and isolation; \
            thread it through a record, or bless a deliberate global with \
            [@@@sidespec \"state <binding>: why\"]"))
      str;
  (* Field-element provenance: every value that left the Modular API
     reduced must stay inside it. lib/field implements the API and is
     audited line by line, so the pass covers everything else in lib. *)
  if ctx.in_lib && not ctx.in_field then
    Flow.check_provenance
      ~report:(fun loc msg -> report ctx loc "field-provenance" msg)
      str

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)

let loc_key (loc : Location.t) = (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum)

let check_structure ctx str =
  check_sidespec ctx str;
  (* Identifier occurrences that are the head of an application; used to
     distinguish [compare a b] (fine) from [compare] passed as a value
     (polymorphic comparison smuggled into a sort or a Hashtbl). *)
  let applied_heads : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let iter =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { loc; _ }; _ }, _) ->
            Hashtbl.replace applied_heads (loc_key loc) ()
        | _ -> ());
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } ->
            let name = strip_stdlib (flatten txt) in
            let applied = Hashtbl.mem applied_heads (loc_key loc) in
            (* determinism *)
            if ctx.in_lib && not ctx.determinism_exempt then
              (match nondeterministic_ident name with
              | Some msg ->
                  report ctx loc "determinism"
                    (String.concat "." name ^ ": " ^ msg)
              | None -> ());
            (* totality: partial accessors everywhere, failwith in lib *)
            (match partial_ident name with
            | Some msg -> report ctx loc "totality" msg
            | None -> ());
            if ctx.in_lib && name = [ "failwith" ] then
              report ctx loc "totality"
                "failwith in library code; raise Invalid_argument with context \
                 or return a Result";
            (* effect hygiene *)
            if ctx.in_lib then (
              match effectful_ident name with
              | Some msg -> report ctx loc "effect-hygiene" msg
              | None -> ());
            (* exec isolation: Obs's process-wide registers are
               domain-local, so reading them from pool code silently
               drops worker data *)
            if ctx.in_exec then (
              match name with
              | [ "Obs"; "Sink"; "last" ] | [ "Sink"; "last" ] ->
                  report ctx loc "exec-isolation"
                    "Obs.Sink.last reads a domain-local register; worker \
                     results must flow through the task's ctx.sink"
              | _ -> ());
            (* field safety *)
            if ctx.field_scoped then (
              (match name with
              | [ ("*" | "mod") as op ] ->
                  report ctx loc "field-safety"
                    (Printf.sprintf
                       "raw (%s) in a field-bearing module; use the Modular \
                        API (16-bit-split mul keeps intermediates < 2^49)"
                       op)
              | [ "+" ] when ctx.strict ->
                  report ctx loc "field-safety"
                    "raw (+) in a field-bearing module (strict); use \
                     Modular.add so sums stay reduced"
              | [ ("==" | "!=") as op ] ->
                  report ctx loc "field-safety"
                    (Printf.sprintf
                       "physical equality (%s) in a field-bearing module; use \
                        F.equal or structural comparison on ints"
                       op)
              | _ -> ());
              match name with
              | [ ("compare" | "=" | "<>") as op ]
                when (not applied) || ctx.strict ->
                  report ctx loc "field-safety"
                    (Printf.sprintf
                       "polymorphic %s (%s) in a field-bearing module; use \
                        F.compare/F.equal or Int.compare"
                       (if applied then "comparison" else "comparison passed as a value")
                       op)
              | _ -> ())
        | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); pexp_loc; _ }
          when ctx.in_lib ->
            report ctx pexp_loc "totality"
              "assert false in library code; make the case impossible by \
               construction or raise with context"
        | _ -> ());
        super#expression e
    end
  in
  iter#structure str

let run ~path ~source ~strict =
  let ctx = make_ctx ~path ~source ~strict in
  (match
     let lexbuf = Lexing.from_string source in
     Lexing.set_filename lexbuf path;
     Parse.implementation lexbuf
   with
  | str -> check_structure ctx str
  | exception _ ->
      ctx.violations <-
        [ { Report.file = path; line = 1; col = 0; rule = "parse";
            message = "could not parse file" } ]);
  List.sort Report.compare_violation ctx.violations
