(* sidecar-sim: command-line driver for the sidecar protocol
   simulations.

   Subcommands:
     quack          one quACK encode/decode round trip with chosen params
     cc-division    §2.1 scenario (with --baseline for the no-sidecar run)
     ack-reduction  §2.2 scenario
     retransmission §2.3 scenario

   Example:
     dune exec bin/sidecar_sim.exe -- cc-division --units 5000 --far-loss 0.02 *)

open Cmdliner
open Sidecar_protocols
module Time = Netsim.Sim_time
module Q = Sidecar_quack

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)

let units =
  Arg.(value & opt int 2000 & info [ "units" ] ~docv:"N" ~doc:"Application units to transfer.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Simulation seed.")

let baseline_flag =
  Arg.(value & flag & info [ "baseline" ] ~doc:"Run the no-sidecar baseline instead.")

let mbps =
  let parse s =
    match float_of_string_opt s with
    | Some f when f > 0. -> Ok (int_of_float (f *. 1e6))
    | _ -> Error (`Msg "expected a positive rate in Mbit/s")
  in
  let print ppf v = Format.fprintf ppf "%g" (float_of_int v /. 1e6) in
  Arg.conv (parse, print)

let msarg =
  let parse s =
    match float_of_string_opt s with
    | Some f when f >= 0. -> Ok (Time.of_float_s (f /. 1e3))
    | _ -> Error (`Msg "expected a delay in ms")
  in
  let print ppf v = Format.fprintf ppf "%g" (Time.to_float_ms v) in
  Arg.conv (parse, print)

let rate ~name ~default doc =
  Arg.(value & opt mbps default & info [ name ] ~docv:"MBPS" ~doc)

let delay ~name ~default doc =
  Arg.(value & opt msarg default & info [ name ] ~docv:"MS" ~doc)

let loss ~name ~default doc =
  Arg.(value & opt float default & info [ name ] ~docv:"P" ~doc)

(* Replicated subcommands (runtime --replications, fairness --trials)
   fan their independent runs over an [Exec] pool. Replication i's
   seed comes from [Netsim.Rng.derive base ~index:i] (replication 0
   keeps the base seed, so a single run is unchanged), which depends
   only on position — the output is identical for any --jobs value. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for replicated runs (default: $(b,SIDECAR_JOBS) \
           or the machine's core count). Output is identical for any value.")

let check_jobs = function
  | Some n when n < 1 ->
      Format.eprintf "--jobs must be at least 1@.";
      exit 2
  | j -> j

let replication_seeds ~base n =
  List.init n (fun i -> if i = 0 then base else Netsim.Rng.derive base ~index:i)

(* Machine-readable output and the flight recorder, shared by the
   scenario subcommands. [--json FILE] writes the run's report as
   JSON; [--trace CATS] enables trace categories process-wide before
   the engine is built (tracing provably never changes results — the
   golden suite pins that) and dumps the recorded ring afterwards. *)

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE" ~doc:"Also write the report as JSON to $(docv).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"CATS"
           ~doc:"Enable trace categories (comma-separated from link, quack, \
                 proto, table; or $(b,all)) and dump recorded events after \
                 the run.")

let set_trace = function
  | None -> false
  | Some "all" ->
      Obs.Sink.set_default_trace_categories Obs.Trace.all_categories;
      true
  | Some spec ->
      let cats =
        List.map
          (fun s ->
            match Obs.Trace.category_of_string (String.trim s) with
            | Some c -> c
            | None ->
                Format.eprintf "unknown trace category %S (expected link, \
                                quack, proto, table or all)@." s;
                exit 2)
          (String.split_on_char ',' spec)
      in
      Obs.Sink.set_default_trace_categories cats;
      true

(* Write [--json], dump [--trace]; call after the run. *)
let finish ~traced json_file report_json =
  (match json_file with
  | None -> ()
  | Some file ->
      Obs.Json.to_file file report_json;
      Format.printf "(wrote %s)@." file);
  if traced then
    match Obs.Sink.last () with
    | Some sink -> Format.printf "%a" Obs.Trace.dump (Obs.Sink.trace sink)
    | None -> ()

(* ------------------------------------------------------------------ *)
(* quack: a single encode/decode round trip                            *)

let quack_cmd =
  let run n t b drops =
    let key = Q.Identifier.key_of_int 7 in
    let ids = List.init n (fun i -> Q.Identifier.of_counter key ~bits:b i) in
    let rx = Q.Receiver_state.create ~bits:b ~threshold:t () in
    List.iteri
      (fun i id -> if not (List.mem i drops) then ignore (Q.Receiver_state.on_receive rx id))
      ids;
    let q = Q.Receiver_state.emit rx in
    Format.printf "quACK: b=%d t=%d -> %d bytes on the wire@." b t
      (String.length (Q.Wire.encode_packed q));
    let sent = Q.Psum.create ~bits:b ~threshold:t () in
    Q.Psum.insert_list sent ids;
    match Q.Decoder.decode_between ~sent ~quack:q ~candidates:ids () with
    | Ok { Q.Decoder.missing; unresolved } ->
        Format.printf "decoded %d missing (%d unresolved):@." (List.length missing)
          unresolved;
        List.iter (fun id -> Format.printf "  %#010x@." id) missing;
        if missing = [] then Format.printf "  (none)@."
    | Error e -> Format.printf "decode failed: %a@." Q.Decoder.pp_error e
  in
  let n = Arg.(value & opt int 1000 & info [ "n"; "count" ] ~doc:"Packets sent.") in
  let t = Arg.(value & opt int 20 & info [ "t"; "threshold" ] ~doc:"Threshold (power sums).") in
  let b = Arg.(value & opt int 32 & info [ "b"; "bits" ] ~doc:"Identifier bits (8/16/24/32).") in
  let drops =
    Arg.(value & opt (list int) [ 17; 202; 777 ]
         & info [ "drop" ] ~docv:"I,J,..." ~doc:"Indices of dropped packets.")
  in
  Cmd.v
    (Cmd.info "quack" ~doc:"One quACK construction/decoding round trip.")
    Term.(const run $ n $ t $ b $ drops)

(* ------------------------------------------------------------------ *)
(* cc-division                                                         *)

let cc_cmd =
  let run units seed baseline near_rate near_delay far_rate far_delay far_loss
      json trace =
    let traced = set_trace trace in
    let cfg =
      {
        Cc_division.default_config with
        units;
        seed;
        near = Path.segment ~rate_bps:near_rate ~delay:near_delay ();
        far =
          Path.segment ~rate_bps:far_rate ~delay:far_delay
            ~loss:(if far_loss > 0. then Path.Bernoulli far_loss else Path.No_loss)
            ();
      }
    in
    if baseline then begin
      let r = Cc_division.baseline cfg in
      Format.printf "%a@." Transport.Flow.pp_result r;
      finish ~traced json (Transport.Flow.json_result r)
    end
    else begin
      let rep = Cc_division.run cfg in
      Format.printf "%a@." Cc_division.pp_report rep;
      finish ~traced json (Cc_division.json_report rep)
    end
  in
  Cmd.v
    (Cmd.info "cc-division" ~doc:"Congestion-control division (paper sec 2.1).")
    Term.(
      const run $ units $ seed $ baseline_flag
      $ rate ~name:"near-rate" ~default:100_000_000 "Server-proxy rate (Mbit/s)."
      $ delay ~name:"near-delay" ~default:(Time.ms 28) "Server-proxy one-way delay (ms)."
      $ rate ~name:"far-rate" ~default:20_000_000 "Proxy-client rate (Mbit/s)."
      $ delay ~name:"far-delay" ~default:(Time.ms 2) "Proxy-client one-way delay (ms)."
      $ loss ~name:"far-loss" ~default:0.01 "Proxy-client loss probability."
      $ json_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* ack-reduction                                                       *)

let ar_cmd =
  let run units seed baseline quack_every client_ack_every json trace =
    let traced = set_trace trace in
    let cfg =
      { Ack_reduction.default_config with units; seed; quack_every; client_ack_every }
    in
    if baseline then begin
      let r, bytes = Ack_reduction.baseline cfg in
      Format.printf "%a@.client ack bytes: %d@." Transport.Flow.pp_result r bytes;
      finish ~traced json (Transport.Flow.json_result r)
    end
    else begin
      let rep = Ack_reduction.run cfg in
      Format.printf "%a@." Ack_reduction.pp_report rep;
      finish ~traced json (Ack_reduction.json_report rep)
    end
  in
  let quack_every =
    Arg.(value & opt int 32 & info [ "quack-every" ] ~doc:"Proxy quACK interval (packets).")
  in
  let client_ack =
    Arg.(value & opt int 32 & info [ "client-ack-every" ] ~doc:"Client e2e ACK interval.")
  in
  Cmd.v
    (Cmd.info "ack-reduction" ~doc:"ACK reduction (paper sec 2.2).")
    Term.(const run $ units $ seed $ baseline_flag $ quack_every $ client_ack
          $ json_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* retransmission                                                      *)

let rx_cmd =
  let run units seed baseline quack_every adaptive avg_loss json trace =
    let traced = set_trace trace in
    let middle_loss =
      if avg_loss <= 0. then Path.No_loss
      else
        (* bursty loss with the requested average: pi_bad * 0.3 = avg *)
        let p_bg = 0.2 in
        let pi_bad = avg_loss /. 0.3 in
        let p_gb = pi_bad *. p_bg /. (1. -. pi_bad) in
        Path.Gilbert { p_good_to_bad = p_gb; p_bad_to_good = p_bg; loss_bad = 0.3 }
    in
    let cfg =
      {
        Retransmission.default_config with
        units;
        seed;
        initial_quack_every = quack_every;
        adaptive;
        middle =
          {
            Retransmission.default_config.Retransmission.middle with
            Path.loss = middle_loss;
          };
      }
    in
    if baseline then begin
      let r = Retransmission.baseline cfg in
      Format.printf "%a@." Transport.Flow.pp_result r;
      finish ~traced json (Transport.Flow.json_result r)
    end
    else begin
      let rep = Retransmission.run cfg in
      Format.printf "%a@." Retransmission.pp_report rep;
      finish ~traced json (Retransmission.json_report rep)
    end
  in
  let quack_every =
    Arg.(value & opt int 8 & info [ "quack-every" ] ~doc:"Initial quACK interval (packets).")
  in
  let adaptive =
    Arg.(value & opt bool true & info [ "adaptive" ] ~doc:"Adapt the quACK frequency to loss.")
  in
  let avg_loss =
    Arg.(value & opt float 0.0143
         & info [ "subpath-loss" ] ~doc:"Average Gilbert-Elliott loss on the middle hop.")
  in
  Cmd.v
    (Cmd.info "retransmission" ~doc:"In-network retransmission (paper sec 2.3).")
    Term.(const run $ units $ seed $ baseline_flag $ quack_every $ adaptive
          $ avg_loss $ json_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* fairness                                                            *)

let fairness_cmd =
  let run units seed baseline far_loss trials jobs =
    let jobs = check_jobs jobs in
    if trials < 1 then begin
      Format.eprintf "--trials must be at least 1@.";
      exit 2
    end;
    let cfg trial_seed =
      {
        Fairness.default_config with
        Fairness.units_per_flow = units;
        seed = trial_seed;
        far =
          Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2)
            ~loss:(if far_loss > 0. then Path.Bernoulli far_loss else Path.No_loss)
            ();
      }
    in
    let go s =
      if baseline then Fairness.baseline (cfg s) else Fairness.run (cfg s)
    in
    if trials = 1 then Format.printf "%a@." Fairness.pp_report (go seed)
    else begin
      let seeds = replication_seeds ~base:seed trials in
      let reports = Exec.map ?jobs ~f:(fun _ctx s -> go s) seeds in
      List.iteri
        (fun i (s, rep) ->
          Format.printf "--- trial %d (seed %d) ---@.%a@." i s
            Fairness.pp_report rep)
        (List.combine seeds reports);
      let mean f =
        List.fold_left (fun acc r -> acc +. f r) 0. reports
        /. float_of_int trials
      in
      Format.printf "mean over %d trials: jain %.3f, aggregate %.2f Mbit/s@."
        trials
        (mean (fun r -> r.Fairness.jain_index))
        (mean (fun r -> r.Fairness.total_goodput_mbps))
    end
  in
  let units =
    Arg.(value & opt int 1500 & info [ "units" ] ~doc:"Units per flow.")
  in
  let trials =
    Arg.(value & opt int 1
         & info [ "trials" ] ~docv:"N"
             ~doc:"Independent trials with derived seeds (run via --jobs).")
  in
  Cmd.v
    (Cmd.info "fairness" ~doc:"Two flows sharing the far segment (Jain index).")
    Term.(const run $ units $ seed $ baseline_flag
          $ loss ~name:"far-loss" ~default:0.005 "Shared-segment loss probability."
          $ trials $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* runtime: many flows through one bounded-table proxy                  *)

let parse_datapath = function
  | "ref" -> `Ref
  | "flat" -> `Flat
  | s ->
      Format.eprintf "unknown datapath %S (expected ref|flat)@." s;
      exit 2

let parse_field = function
  | "modular" -> `Modular
  | "log" -> `Log
  | s ->
      Format.eprintf "unknown field backend %S (expected modular|log)@." s;
      exit 2

(* runtime --shards N: the always-on sharded runtime instead of the
   event-driven scenario. Under BENCH_DETERMINISTIC=1 the JSON report
   omits the shard count — the CI invariance step [cmp]s the files
   from --shards 1 and --shards 4 byte for byte. *)
let run_sharded ~shards ~partitions ~flows ~table ~eviction ~idle_epochs
    ~arrivals ~quack_every ~datapath ~field ~bits ~seed ~json =
  let module Sr = Sidecar_runtime.Shard_runtime in
  let d = Sr.default_config in
  let policy =
    match Option.value eviction ~default:"idle" with
    | "lru" -> Sr.Lru
    | "idle" -> Sr.Idle_epochs idle_epochs
    | s ->
        Format.eprintf "unknown eviction policy %S (expected lru|idle)@." s;
        exit 2
  in
  let cfg =
    {
      d with
      Sr.shards;
      partitions;
      capacity = Option.value table ~default:d.Sr.capacity;
      policy;
      datapath =
        (match datapath with Some s -> parse_datapath s | None -> d.Sr.datapath);
      field = parse_field field;
      bits = Option.value bits ~default:d.Sr.bits;
      flows = Option.value flows ~default:d.Sr.flows;
      arrivals_per_epoch = Option.value arrivals ~default:d.Sr.arrivals_per_epoch;
      quack_every;
      seed;
    }
  in
  let r = Sr.run cfg in
  Format.printf "%a@." Sr.pp_report r;
  let deterministic = Sys.getenv_opt "BENCH_DETERMINISTIC" = Some "1" in
  finish ~traced:false json (Sr.json_report ~deterministic r)

(* runtime --scenario handover|multipath: the §5 mobility and
   multipath families. Each runs a fixed list of arms (handover:
   no-migration baseline vs. Resync vs. Transfer; multipath: split
   vs. single-path) fanned over an [Exec] pool whose width comes from
   --jobs or --shards — arms are merged in submission order, so the
   report is byte-identical for any pool width. *)
let run_scenario_family ~family ~flows ~table ~seed ~json ~pool_jobs
    ~migrate_after ~ctrl_delay ~crowd ~split ~quack_every ~attack_rate =
  let module H = Sidecar_runtime.Handover in
  let module M = Sidecar_runtime.Multipath in
  let module A = Sidecar_runtime.Adversary in
  let module L = Sidecar_runtime.Leakage in
  let with_crowd arrival =
    match (crowd, arrival) with
    | Some c, Netsim.Workload.Flash_crowd { base_mean_s; at_s; crowd = _; spread_s }
      ->
        Netsim.Workload.Flash_crowd { base_mean_s; at_s; crowd = c; spread_s }
    | Some c, Netsim.Workload.Poisson _ ->
        Netsim.Workload.Flash_crowd
          { base_mean_s = 0.05; at_s = 0.4; crowd = c; spread_s = 0.05 }
    | None, a -> a
  in
  let arms_json name arms =
    Obs.Json.Obj [ ("scenario", Obs.Json.String name); ("arms", Obs.Json.Obj arms) ]
  in
  match family with
  | "handover" ->
      let d = H.default_config in
      let base =
        {
          d with
          H.flows = Option.value flows ~default:d.H.flows;
          table_flows = Option.value table ~default:d.H.table_flows;
          arrival = with_crowd d.H.arrival;
          migrate_after =
            Option.value migrate_after ~default:d.H.migrate_after;
          ctrl_delay = Option.value ctrl_delay ~default:d.H.ctrl_delay;
          quack_every = Option.value quack_every ~default:d.H.quack_every;
          seed;
        }
      in
      let arms =
        [
          ("baseline", { base with H.migrate = false });
          ("resync", { base with H.strategy = H.Resync });
          ("transfer", { base with H.strategy = H.Transfer });
        ]
      in
      let reports =
        Exec.map ?jobs:pool_jobs ~f:(fun _ctx (_, c) -> H.run c) arms
      in
      List.iter (fun r -> Format.printf "%a@." H.pp_report r) reports;
      finish ~traced:false json
        (arms_json "handover"
           (List.map2
              (fun (name, _) r -> (name, H.json_report r))
              arms reports))
  | "multipath" ->
      let d = M.default_config in
      let base =
        {
          d with
          M.flows = Option.value flows ~default:d.M.flows;
          table_flows = Option.value table ~default:d.M.table_flows;
          arrival = with_crowd d.M.arrival;
          split = Option.value split ~default:d.M.split;
          quack_every = Option.value quack_every ~default:d.M.quack_every;
          seed;
        }
      in
      let arms =
        [ ("split", base); ("single_path", { base with M.split = (1, 0) }) ]
      in
      let reports =
        Exec.map ?jobs:pool_jobs ~f:(fun _ctx (_, c) -> M.run c) arms
      in
      List.iter (fun r -> Format.printf "%a@." M.pp_report r) reports;
      finish ~traced:false json
        (arms_json "multipath"
           (List.map2
              (fun (name, _) r -> (name, M.json_report r))
              arms reports))
  | "adversary" ->
      let d = A.default_config in
      let rate = Option.value attack_rate ~default:d.A.attack_rate in
      if not (rate >= 0. && rate <= 1.) then begin
        Format.eprintf "--attack-rate must be in [0, 1]@.";
        exit 2
      end;
      let base =
        {
          d with
          A.flows = Option.value flows ~default:d.A.flows;
          table_flows = Option.value table ~default:d.A.table_flows;
          arrival = with_crowd d.A.arrival;
          quack_every = Option.value quack_every ~default:d.A.quack_every;
          seed;
        }
      in
      (* damage curve (unauth at 0, r/2, r) plus the defence at r *)
      let arms =
        [
          ("unauth_rate0", { base with A.auth = false; attack_rate = 0. });
          ( "unauth_rate_half",
            { base with A.auth = false; attack_rate = rate /. 2. } );
          ("unauth", { base with A.auth = false; attack_rate = rate });
          ("auth", { base with A.auth = true; attack_rate = rate });
        ]
      in
      let reports =
        Exec.map ?jobs:pool_jobs ~f:(fun _ctx (_, c) -> A.run c) arms
      in
      List.iter (fun r -> Format.printf "%a@." A.pp_report r) reports;
      finish ~traced:false json
        (arms_json "adversary"
           (List.map2
              (fun (name, _) r -> (name, A.json_report r))
              arms reports))
  | "leakage" ->
      let d = L.default_config in
      let base =
        {
          d with
          L.flows = Option.value flows ~default:d.L.flows;
          table_flows = Option.value table ~default:d.L.table_flows;
          arrival = with_crowd d.L.arrival;
          quack_every = Option.value quack_every ~default:d.L.quack_every;
          seed;
        }
      in
      let arms =
        [
          ("unshaped", { base with L.shape = false });
          ("shaped", { base with L.shape = true });
        ]
      in
      let reports =
        Exec.map ?jobs:pool_jobs ~f:(fun _ctx (_, c) -> L.run c) arms
      in
      List.iter (fun r -> Format.printf "%a@." L.pp_report r) reports;
      finish ~traced:false json
        (arms_json "leakage"
           (List.map2
              (fun (name, _) r -> (name, L.json_report r))
              arms reports))
  | s ->
      Format.eprintf
        "unknown scenario %S (expected handover|multipath|adversary|leakage)@."
        s;
      exit 2

let runtime_cmd =
  let run protocol flows table eviction idle_ms seed far_loss per_flow
      datapath field bits json trace replications jobs shards partitions
      arrivals idle_epochs quack_every scenario migrate_after ctrl_delay crowd
      split attack_rate =
    match scenario with
    | Some family ->
        let pool_jobs =
          match shards with Some n -> check_jobs (Some n) | None -> check_jobs jobs
        in
        let split =
          match split with
          | None -> None
          | Some s -> (
              match String.split_on_char ':' s with
              | [ a; b ] -> (
                  match (int_of_string_opt a, int_of_string_opt b) with
                  | Some a, Some b when a >= 0 && b >= 0 && a + b > 0 ->
                      Some (a, b)
                  | _ ->
                      Format.eprintf "bad --split %S (expected A:B)@." s;
                      exit 2)
              | _ ->
                  Format.eprintf "bad --split %S (expected A:B)@." s;
                  exit 2)
        in
        run_scenario_family ~family ~flows ~table ~seed ~json ~pool_jobs
          ~migrate_after ~ctrl_delay ~crowd ~split ~quack_every ~attack_rate
    | None ->
    match shards with
    | Some shards ->
        run_sharded ~shards ~partitions ~flows ~table ~eviction ~idle_epochs
          ~arrivals
          ~quack_every:(Option.value quack_every ~default:16)
          ~datapath ~field ~bits ~seed ~json
    | None ->
    let jobs = check_jobs jobs in
    if replications < 1 then begin
      Format.eprintf "--replications must be at least 1@.";
      exit 2
    end;
    let traced = set_trace trace in
    let policy =
      match Option.value eviction ~default:"lru" with
      | "lru" -> Sidecar_runtime.Flow_table.Lru
      | "idle" -> Sidecar_runtime.Flow_table.Idle idle_ms
      | s ->
          Format.eprintf "unknown eviction policy %S (expected lru|idle)@." s;
          exit 2
    in
    let protocol =
      match protocol with
      | "cc" -> `Cc
      | "ack" -> `Ack
      | "retx" -> `Retx
      | s ->
          Format.eprintf "unknown protocol %S (expected cc|ack|retx)@." s;
          exit 2
    in
    let flows = Option.value flows ~default:200 in
    let table = Option.value table ~default:64 in
    let datapath = parse_datapath (Option.value datapath ~default:"ref") in
    let field = parse_field field in
    let bits =
      match bits with
      | Some b -> b
      | None -> Sidecar_runtime.Scenario.default_config.Sidecar_runtime.Scenario.bits
    in
    let cfg run_seed =
      {
        Sidecar_runtime.Scenario.default_config with
        Sidecar_runtime.Scenario.protocol;
        flows;
        table_flows = table;
        policy;
        datapath;
        field;
        bits;
        seed = run_seed;
        far =
          Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2)
            ~loss:(if far_loss > 0. then Path.Bernoulli far_loss else Path.No_loss)
            ();
      }
    in
    let print_report r =
      Format.printf "%a@." Sidecar_runtime.Scenario.pp_report r;
      if per_flow then
        Array.iter
          (fun (fr : Sidecar_runtime.Scenario.flow_report) ->
            Format.printf
              "flow %3d: %4d units, start %a, %s, tx %d retx %d pto %d@."
              fr.Sidecar_runtime.Scenario.flow fr.Sidecar_runtime.Scenario.units
              Time.pp fr.Sidecar_runtime.Scenario.started_at
              (if fr.Sidecar_runtime.Scenario.completed then
                 Printf.sprintf "fct %.3fs" fr.Sidecar_runtime.Scenario.fct_s
               else "INCOMPLETE")
              fr.Sidecar_runtime.Scenario.transmissions
              fr.Sidecar_runtime.Scenario.retransmissions
              fr.Sidecar_runtime.Scenario.timeouts)
          r.Sidecar_runtime.Scenario.flows
    in
    if replications = 1 then begin
      let r = Sidecar_runtime.Scenario.run (cfg seed) in
      print_report r;
      finish ~traced json (Sidecar_runtime.Scenario.json_report r)
    end
    else begin
      let seeds = replication_seeds ~base:seed replications in
      let reports =
        Exec.map ?jobs
          ~f:(fun _ctx s -> Sidecar_runtime.Scenario.run (cfg s))
          seeds
      in
      List.iteri
        (fun i (s, r) ->
          Format.printf "--- replication %d (seed %d) ---@." i s;
          print_report r)
        (List.combine seeds reports);
      let n = float_of_int replications in
      let mean f =
        List.fold_left
          (fun acc (r : Sidecar_runtime.Scenario.report) -> acc +. f r)
          0. reports
        /. n
      in
      Format.printf
        "mean over %d replications: fct p50 %.3fs p95 %.3fs p99 %.3fs@."
        replications
        (mean (fun r -> r.Sidecar_runtime.Scenario.fct_p50))
        (mean (fun r -> r.Sidecar_runtime.Scenario.fct_p95))
        (mean (fun r -> r.Sidecar_runtime.Scenario.fct_p99));
      finish ~traced json
        (Obs.Json.Obj
           [
             ( "replications",
               Obs.Json.List
                 (List.map Sidecar_runtime.Scenario.json_report reports) );
           ])
    end
  in
  let flows =
    Arg.(value & opt (some int) None
         & info [ "flows" ] ~docv:"N"
             ~doc:"Flow count (default 200; with --shards, total flows over \
                   the run, default 240000).")
  in
  let table =
    Arg.(value & opt (some int) None
         & info [ "table" ] ~docv:"N"
             ~doc:"Flow-table capacity (0 = pure end-to-end; default 64, or \
                   2048 split across partitions with --shards).")
  in
  let eviction =
    Arg.(value & opt (some string) None
         & info [ "eviction" ] ~docv:"POLICY"
             ~doc:"Eviction policy: lru or idle (default lru; idle with \
                   --shards).")
  in
  let idle_ms =
    Arg.(value & opt msarg (Time.ms 100)
         & info [ "idle-ms" ] ~docv:"MS" ~doc:"Idle span for the idle policy.")
  in
  let per_flow =
    Arg.(value & flag & info [ "per-flow" ] ~doc:"Also print one line per flow.")
  in
  let protocol =
    Arg.(value & opt string "cc"
         & info [ "protocol" ] ~docv:"PROTO"
             ~doc:"Sidecar protocol the proxy runs: cc (CC division), ack \
                   (ACK reduction), or retx (in-network retransmission pair).")
  in
  let replications =
    Arg.(value & opt int 1
         & info [ "replications" ] ~docv:"N"
             ~doc:"Independent replications with derived seeds (run via \
                   --jobs).")
  in
  let datapath =
    Arg.(value & opt (some string) None
         & info [ "datapath" ] ~docv:"DP"
             ~doc:"Proxy receiver datapath: ref (authoritative per-flow \
                   Receiver_state) or flat (slab-backed flat-array fast \
                   path; reports are byte-identical). Default ref, or flat \
                   with --shards.")
  in
  let shards =
    Arg.(value & opt (some int) None
         & info [ "shards" ] ~docv:"N"
             ~doc:"Run the always-on sharded runtime on $(docv) worker \
                   domains instead of the event-driven scenario. The \
                   deterministic report is byte-identical for any $(docv).")
  in
  let partitions =
    Arg.(value & opt int 16
         & info [ "partitions" ] ~docv:"P"
             ~doc:"Fixed logical flow-table partitions (admission and \
                   eviction are decided per partition, so results never \
                   depend on --shards). Requires --shards.")
  in
  let arrivals =
    Arg.(value & opt (some int) None
         & info [ "arrivals" ] ~docv:"N"
             ~doc:"Flow arrivals per epoch for --shards mode (default 6000).")
  in
  let idle_epochs =
    Arg.(value & opt int 4
         & info [ "idle-epochs" ] ~docv:"E"
             ~doc:"Idle span, in epochs, for --shards mode's idle policy.")
  in
  let quack_every =
    Arg.(value & opt (some int) None
         & info [ "quack-every" ] ~docv:"K"
             ~doc:"A tracked flow emits a quACK every $(docv)-th packet \
                   (--shards mode).")
  in
  let field =
    Arg.(value & opt string "modular"
         & info [ "field" ] ~docv:"F"
             ~doc:"Sketch arithmetic: modular or log (precomputed \
                   discrete-log tables; needs small --bits, e.g. 16).")
  in
  let bits =
    Arg.(value & opt (some int) None
         & info [ "bits" ] ~docv:"B"
             ~doc:"Identifier width for the proxy sketches (default: the \
                   planner's choice).")
  in
  let scenario =
    Arg.(value & opt (some string) None
         & info [ "scenario" ] ~docv:"FAMILY"
             ~doc:"Run a scenario family instead of the single-proxy \
                   runtime: handover (no-migration/resync/transfer arms), \
                   multipath (split/single-path arms), adversary \
                   (unauth damage curve vs. authenticated defence under an \
                   on-path quACK attacker) or leakage (unshaped/shaped \
                   quACK side-channel probe). Arms are fanned over \
                   the --jobs (or --shards) pool; the report is \
                   byte-identical for any pool width.")
  in
  let migrate_after =
    Arg.(value & opt (some msarg) None
         & info [ "migrate-after" ] ~docv:"MS"
             ~doc:"handover: migrate each flow this long into its life \
                   (default 600).")
  in
  let ctrl_delay =
    Arg.(value & opt (some msarg) None
         & info [ "ctrl-delay" ] ~docv:"MS"
             ~doc:"handover: modeled control-channel delay for the Transfer \
                   snapshot (default 5).")
  in
  let crowd =
    Arg.(value & opt (some int) None
         & info [ "crowd" ] ~docv:"N"
             ~doc:"Scenario families: flash-crowd burst size (default 16).")
  in
  let split =
    Arg.(value & opt (some string) None
         & info [ "split" ] ~docv:"A:B"
             ~doc:"multipath: of every A+B data packets, the first A take \
                   path 1 (default 1:1).")
  in
  let attack_rate =
    Arg.(value & opt (some float) None
         & info [ "attack-rate" ] ~docv:"R"
             ~doc:"adversary: per-quACK bernoulli rate for each of the four \
                   attacks (spoof/replay/truncate/bit-flip), in [0, 1] \
                   (default 0.1). The family sweeps 0, R/2, R \
                   unauthenticated plus R authenticated.")
  in
  Cmd.v
    (Cmd.info "runtime"
       ~doc:"Many flows through bounded-table sidecar proxy state.")
    Term.(const run $ protocol $ flows $ table $ eviction $ idle_ms $ seed
          $ loss ~name:"far-loss" ~default:0.01 "Proxy-client loss probability."
          $ per_flow $ datapath $ field $ bits $ json_arg $ trace_arg
          $ replications $ jobs_arg $ shards $ partitions $ arrivals
          $ idle_epochs $ quack_every $ scenario $ migrate_after $ ctrl_delay
          $ crowd $ split $ attack_rate)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "Sidecar protocol simulations (HotNets '22 reproduction)." in
  let info = Cmd.info "sidecar-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ quack_cmd; cc_cmd; ar_cmd; rx_cmd; fairness_cmd; runtime_cmd ]))
