(* quack-bench: a CLI mirroring the authors' benchmark artifact
   (github.com/ygina/quack): time quACK construction and decoding for
   chosen parameters, reporting mean and stddev over trials.

   Examples:
     dune exec bin/quack_bench.exe -- construct -n 1000 -t 20 -b 32
     dune exec bin/quack_bench.exe -- decode -n 1000 -t 20 -m 20 --trials 100
     dune exec bin/quack_bench.exe -- decode --strategy factor -n 100000 *)

open Cmdliner
open Sidecar_quack

let key = Identifier.key_of_int 0xB3

let ids ~bits n = List.init n (fun i -> Identifier.of_counter key ~bits i)

let time_s f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let run_trials ~trials ~warmup f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let samples = Array.init trials (fun _ -> fst (time_s f)) in
  let mean = Array.fold_left ( +. ) 0. samples /. float_of_int trials in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. samples
    /. float_of_int (max 1 (trials - 1))
  in
  (mean, sqrt var)

let n_arg = Arg.(value & opt int 1000 & info [ "n"; "num-packets" ] ~doc:"Packets sent.")
let t_arg = Arg.(value & opt int 20 & info [ "t"; "threshold" ] ~doc:"Threshold.")

let b_arg =
  Arg.(value & opt int 32 & info [ "b"; "bits" ] ~doc:"Identifier bits (8/16/24/32).")

let trials_arg = Arg.(value & opt int 100 & info [ "trials" ] ~doc:"Timed trials.")
let warmup_arg = Arg.(value & opt int 10 & info [ "warmup" ] ~doc:"Warm-up runs.")

let construct_cmd =
  let run n t b trials warmup =
    let packets = ids ~bits:b n in
    let mean, sd =
      run_trials ~trials ~warmup (fun () ->
          let s = Psum.create ~bits:b ~threshold:t () in
          List.iter (Psum.insert s) packets;
          s)
    in
    Printf.printf
      "construct n=%d t=%d b=%d: %.1f us +/- %.1f (%.0f ns/packet) over %d trials\n"
      n t b (1e6 *. mean) (1e6 *. sd)
      (1e9 *. mean /. float_of_int n)
      trials
  in
  Cmd.v
    (Cmd.info "construct" ~doc:"Time quACK construction from n packets.")
    Term.(const run $ n_arg $ t_arg $ b_arg $ trials_arg $ warmup_arg)

let decode_cmd =
  let run n t b m strategy trials warmup =
    if m > t then (
      Printf.eprintf "error: m (%d) must be <= t (%d)\n" m t;
      exit 1);
    let packets = ids ~bits:b n in
    let sent = Psum.create ~bits:b ~threshold:t () in
    let received = Psum.create ~bits:b ~threshold:t () in
    let missing_idx = List.init m (fun i -> i * (n / (m + 1))) in
    List.iteri
      (fun i id ->
        Psum.insert sent id;
        if not (List.mem i missing_idx) then Psum.insert received id)
      packets;
    let diff = Psum.difference ~sent ~received_sums:(Psum.sums received) () in
    let field = Psum.field sent in
    let strategy = if strategy = "factor" then `Factor else `Plug_in in
    let mean, sd =
      run_trials ~trials ~warmup (fun () ->
          Decoder.decode ~strategy ~field ~diff_sums:diff ~num_missing:m
            ~candidates:packets ())
    in
    Printf.printf "decode n=%d t=%d b=%d m=%d (%s): %.1f us +/- %.1f over %d trials\n"
      n t b m
      (match strategy with `Factor -> "factor" | `Plug_in -> "plug-in")
      (1e6 *. mean) (1e6 *. sd) trials
  in
  let m_arg =
    Arg.(value & opt int 20 & info [ "m"; "missing" ] ~doc:"Missing packets.")
  in
  let strategy_arg =
    Arg.(value & opt string "plug-in"
         & info [ "strategy" ] ~doc:"Decoder: plug-in or factor.")
  in
  Cmd.v
    (Cmd.info "decode" ~doc:"Time decoding m missing packets from a quACK.")
    Term.(const run $ n_arg $ t_arg $ b_arg $ m_arg $ strategy_arg $ trials_arg $ warmup_arg)

let plan_cmd =
  let run rtt_ms rate_mbps loss mtu budget =
    let req =
      {
        Planner.default_requirements with
        Planner.link =
          {
            Frequency.rtt_s = rtt_ms /. 1e3;
            rate_bps = rate_mbps *. 1e6;
            loss;
            mtu_bytes = mtu;
          };
        max_indeterminate = budget;
      }
    in
    List.iter
      (fun (label, protocol) ->
        match Planner.plan { req with Planner.protocol } with
        | d -> Format.printf "%-16s %a@." label Planner.pp_decision d
        | exception Invalid_argument msg -> Format.printf "%-16s %s@." label msg)
      [
        ("cc-division", Planner.Cc_division);
        ("ack-reduction", Planner.Ack_reduction 32);
        ("retransmission", Planner.Retransmission 20);
      ]
  in
  let rtt = Arg.(value & opt float 60. & info [ "rtt" ] ~doc:"RTT, ms.") in
  let rate = Arg.(value & opt float 200. & info [ "rate" ] ~doc:"Rate, Mbit/s.") in
  let loss = Arg.(value & opt float 0.02 & info [ "loss" ] ~doc:"Max loss ratio.") in
  let mtu = Arg.(value & opt int 1500 & info [ "mtu" ] ~doc:"Packet size, bytes.") in
  let budget =
    Arg.(value & opt float 1e-6
         & info [ "indeterminate" ] ~doc:"Collision probability budget.")
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Pick quACK parameters for a link (sec 4.2-4.3).")
    Term.(const run $ rtt $ rate $ loss $ mtu $ budget)

let () =
  let info =
    Cmd.info "quack-bench" ~version:"1.0.0"
      ~doc:"Benchmark the quACK primitive (mirrors the paper's artifact)."
  in
  exit (Cmd.eval (Cmd.group info [ construct_cmd; decode_cmd; plan_cmd ]))
